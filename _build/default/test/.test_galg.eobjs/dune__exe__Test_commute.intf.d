test/test_commute.mli:
