test/test_schedule.ml: Alcotest Array Benchmarks Caqr List Quantum String
