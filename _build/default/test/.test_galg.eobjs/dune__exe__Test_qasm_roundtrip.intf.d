test/test_qasm_roundtrip.mli:
