test/test_benchmarks.ml: Alcotest Benchmarks Galg List Printf Quantum Sim
