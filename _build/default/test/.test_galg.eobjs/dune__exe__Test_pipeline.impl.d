test/test_pipeline.ml: Alcotest Benchmarks Caqr Galg Hardware List Quantum Sim String Transpiler
