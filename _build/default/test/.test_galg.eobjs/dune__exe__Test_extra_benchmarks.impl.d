test/test_extra_benchmarks.ml: Alcotest Benchmarks Caqr Galg Hardware List Printf Quantum Sim
