test/test_galg.ml: Alcotest Array Galg List
