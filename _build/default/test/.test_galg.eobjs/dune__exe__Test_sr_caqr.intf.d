test/test_sr_caqr.mli:
