test/test_sr_caqr.ml: Alcotest Array Benchmarks Caqr Float Galg Hardware List Printf Qaoa Quantum Sim Transpiler
