test/test_qs_caqr.mli:
