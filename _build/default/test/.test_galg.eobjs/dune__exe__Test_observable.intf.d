test/test_observable.mli:
