test/test_integration.ml: Alcotest Benchmarks Caqr Galg Hardware List Printf Qaoa Quantum Sim String Transpiler
