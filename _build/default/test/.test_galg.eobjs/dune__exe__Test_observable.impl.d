test/test_observable.ml: Alcotest List Quantum Sim
