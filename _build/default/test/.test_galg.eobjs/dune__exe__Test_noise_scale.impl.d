test/test_noise_scale.ml: Alcotest Benchmarks Hardware Printf Sim Transpiler
