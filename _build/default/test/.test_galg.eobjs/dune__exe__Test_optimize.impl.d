test/test_optimize.ml: Alcotest Array Benchmarks Caqr Float Galg List Quantum Sim
