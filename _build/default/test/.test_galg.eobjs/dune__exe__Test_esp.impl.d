test/test_esp.ml: Alcotest Benchmarks Caqr Hardware Quantum Sim Transpiler
