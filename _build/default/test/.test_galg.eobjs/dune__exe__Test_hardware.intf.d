test/test_hardware.mli:
