test/test_noise_scale.mli:
