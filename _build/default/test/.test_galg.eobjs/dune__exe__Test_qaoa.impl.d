test/test_qaoa.ml: Alcotest Array Float Galg List Qaoa Quantum Sim
