test/test_transpiler.ml: Alcotest Array Benchmarks Hardware Hashtbl List Quantum Sim Transpiler
