test/test_quantum.mli:
