test/test_verify.ml: Alcotest Array Benchmarks Caqr Hardware List Printf Quantum Transpiler Verify
