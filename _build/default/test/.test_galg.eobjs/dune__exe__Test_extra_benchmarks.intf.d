test/test_extra_benchmarks.mli:
