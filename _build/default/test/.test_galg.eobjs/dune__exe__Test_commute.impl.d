test/test_commute.ml: Alcotest Array Caqr Float Galg List Qaoa Quantum Sim
