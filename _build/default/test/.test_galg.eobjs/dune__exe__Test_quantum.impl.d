test/test_quantum.ml: Alcotest Array Galg List Quantum String
