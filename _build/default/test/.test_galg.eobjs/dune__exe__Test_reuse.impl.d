test/test_reuse.ml: Alcotest Array Benchmarks Caqr List Printf Quantum Sim
