test/test_qasm_roundtrip.ml: Alcotest Benchmarks Caqr Galg Hardware List Quantum Verify
