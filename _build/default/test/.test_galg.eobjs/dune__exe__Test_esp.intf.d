test/test_esp.mli:
