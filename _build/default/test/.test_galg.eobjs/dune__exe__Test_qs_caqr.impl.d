test/test_qs_caqr.ml: Alcotest Benchmarks Caqr List Printf Quantum Sim
