test/test_sim.ml: Alcotest Float Hardware List Quantum Random Sim
