(* Unit tests for the commutable-gate (QAOA) reuse machinery. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let square () = Galg.Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3); (3, 0) ]
let star5 () = Galg.Graph.of_edges 5 (List.init 4 (fun i -> (4, i)))
let path4 () = Galg.Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3) ]

let test_min_qubits_coloring () =
  check int "square (even cycle) = 2" 2 (Caqr.Commute.min_qubits (square ()));
  check int "star = 2" 2 (Caqr.Commute.min_qubits (star5 ()));
  check int "triangle = 3" 3
    (Caqr.Commute.min_qubits (Galg.Graph.of_edges 3 [ (0, 1); (1, 2); (0, 2) ]))

let test_plan_initial () =
  let p = Caqr.Commute.make (square ()) in
  check int "usage = n" 4 (Caqr.Commute.usage p);
  check int "no pairs" 0 (List.length (Caqr.Commute.pairs p));
  check (Alcotest.list int) "singleton chain" [ 2 ] (Caqr.Commute.chain p 2)

let test_valid_merge_conditions () =
  let p = Caqr.Commute.make (square ()) in
  (* 0 and 1 interact: invalid. 0 and 2 do not: valid. *)
  check bool "adjacent invalid" false (Caqr.Commute.valid_merge p ~src:0 ~dst:1);
  check bool "non-adjacent valid" true (Caqr.Commute.valid_merge p ~src:0 ~dst:2)

let test_merge_updates_chains () =
  let p = Caqr.Commute.make (square ()) in
  let p' = Caqr.Commute.merge p ~src:0 ~dst:2 in
  check int "usage drops" 3 (Caqr.Commute.usage p');
  check (Alcotest.list int) "chain [0;2]" [ 0; 2 ] (Caqr.Commute.chain p' 0);
  (* Copy-on-write: original untouched. *)
  check int "original intact" 4 (Caqr.Commute.usage p)

let test_merge_invalid_raises () =
  let p = Caqr.Commute.make (square ()) in
  Alcotest.check_raises "invalid merge"
    (Invalid_argument "Commute.merge: invalid pair") (fun () ->
      ignore (Caqr.Commute.merge p ~src:0 ~dst:1))

let test_chain_independence_enforced () =
  (* P4: chain [0;2] then try to add 1 (adjacent to both) -> invalid;
     3 is adjacent to 2 -> also invalid; so usage floor is 3. *)
  let p = Caqr.Commute.make (path4 ()) in
  let p' = Caqr.Commute.merge p ~src:0 ~dst:2 in
  check bool "1 conflicts" false (Caqr.Commute.valid_merge p' ~src:2 ~dst:1);
  check bool "3 conflicts with 2" false (Caqr.Commute.valid_merge p' ~src:2 ~dst:3)

let test_cycle_detection () =
  (* The deadlock example: wires [a=0,b=1], [c=2,d=3] with edges a-d and
     c-b. Merging (0,1) then (2,3) must be rejected. *)
  let g = Galg.Graph.of_edges 4 [ (0, 3); (2, 1) ] in
  let p = Caqr.Commute.make g in
  let p1 = Caqr.Commute.merge p ~src:0 ~dst:1 in
  check bool "second merge closes a cycle" false
    (Caqr.Commute.valid_merge p1 ~src:2 ~dst:3);
  (* The compatible orientation works. *)
  check bool "reverse orientation fine" true
    (Caqr.Commute.valid_merge p1 ~src:3 ~dst:2)

let test_schedule_rounds_parallelism () =
  (* A perfect matching of 2 disjoint edges schedules in 1 round. *)
  let g = Galg.Graph.of_edges 4 [ (0, 1); (2, 3) ] in
  check int "1 round" 1 (Caqr.Commute.schedule_rounds (Caqr.Commute.make g));
  (* A path of 3 edges needs 2 rounds. *)
  check int "2 rounds" 2 (Caqr.Commute.schedule_rounds (Caqr.Commute.make (path4 ())))

let test_schedule_rounds_with_reuse_serializes () =
  (* square with (0 -> 2): 2's edges wait for 0's. *)
  let p = Caqr.Commute.merge (Caqr.Commute.make (square ())) ~src:0 ~dst:2 in
  check bool "more rounds than plain" true
    (Caqr.Commute.schedule_rounds p
    >= Caqr.Commute.schedule_rounds (Caqr.Commute.make (square ())))

let test_emit_structure () =
  let g = square () in
  let c = Caqr.Commute.emit (Caqr.Commute.make g) in
  check int "rzz per edge" 4 (Quantum.Circuit.two_q_count c);
  check int "all vertices measured" 4
    (Array.fold_left
       (fun acc gate ->
         match gate.Quantum.Gate.kind with
         | Quantum.Gate.Measure _ -> acc + 1
         | _ -> acc)
       0 c.Quantum.Circuit.gates);
  check int "four wires" 4 (Caqr.Reuse.qubit_usage c)

let test_emit_reuse_compresses_wires () =
  let p = Caqr.Commute.merge (Caqr.Commute.make (square ())) ~src:0 ~dst:2 in
  let c = Caqr.Commute.emit p in
  check int "three wires" 3 (Caqr.Reuse.qubit_usage c);
  check int "reset present" 1 (Quantum.Circuit.mid_circuit_measurements c)

let test_emit_energy_preserved () =
  (* The transformed circuit must produce the same max-cut energy as the
     plain ansatz at identical parameters. *)
  let g = Galg.Gen.random ~seed:21 7 ~density:0.35 in
  let problem = { Qaoa.Maxcut.graph = g; name = "t" } in
  let plain = Caqr.Commute.emit (Caqr.Commute.make g) in
  let steps = Caqr.Commute.sweep g in
  let last = List.nth steps (List.length steps - 1) in
  let reused = Caqr.Commute.emit last.Caqr.Commute.plan in
  check bool "wires saved" true
    (Caqr.Reuse.qubit_usage reused < Caqr.Reuse.qubit_usage plain);
  let e c seed =
    Qaoa.Maxcut.neg_expected_cut problem (Sim.Executor.run ~seed ~shots:6000 c)
  in
  let e0 = e plain 31 and e1 = e reused 32 in
  check bool "energies agree" true (Float.abs (e0 -. e1) < 0.25)

let test_sweep_trajectory () =
  let g = Galg.Gen.random ~seed:5 10 ~density:0.3 in
  let steps = Caqr.Commute.sweep g in
  let usages = List.map (fun s -> s.Caqr.Commute.usage) steps in
  check int "starts at n" 10 (List.hd usages);
  let rec decreasing = function
    | a :: (b :: _ as r) -> a > b && decreasing r
    | _ -> true
  in
  check bool "strictly decreasing" true (decreasing usages);
  (* Reaches at most a couple above the coloring bound. *)
  let final = List.nth usages (List.length usages - 1) in
  check bool "near coloring bound" true
    (final <= Caqr.Commute.min_qubits g + 2)

let test_sweep_modes_agree_on_floor () =
  let g = Galg.Gen.random ~seed:6 8 ~density:0.3 in
  let floor mode =
    let steps = Caqr.Commute.sweep ~mode g in
    (List.nth steps (List.length steps - 1)).Caqr.Commute.usage
  in
  check bool "heuristic close to exact" true
    (abs (floor `Exact - floor `Heuristic) <= 2)

let test_emit_respects_gamma_beta () =
  let g = square () in
  let c = Caqr.Commute.emit ~gamma:1.1 ~beta:0.4 (Caqr.Commute.make g) in
  let found = ref false in
  Array.iter
    (fun gate ->
      match gate.Quantum.Gate.kind with
      | Quantum.Gate.Rzz (th, _, _) -> if Float.abs (th -. 1.1) < 1e-9 then found := true
      | _ -> ())
    c.Quantum.Circuit.gates;
  check bool "gamma propagated" true !found

let () =
  Alcotest.run "commute"
    [
      ( "plan",
        [
          Alcotest.test_case "min qubits" `Quick test_min_qubits_coloring;
          Alcotest.test_case "initial" `Quick test_plan_initial;
          Alcotest.test_case "valid merge" `Quick test_valid_merge_conditions;
          Alcotest.test_case "merge chains" `Quick test_merge_updates_chains;
          Alcotest.test_case "merge invalid" `Quick test_merge_invalid_raises;
          Alcotest.test_case "independence" `Quick test_chain_independence_enforced;
          Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "parallelism" `Quick test_schedule_rounds_parallelism;
          Alcotest.test_case "reuse serializes" `Quick test_schedule_rounds_with_reuse_serializes;
        ] );
      ( "emit",
        [
          Alcotest.test_case "structure" `Quick test_emit_structure;
          Alcotest.test_case "wire compression" `Quick test_emit_reuse_compresses_wires;
          Alcotest.test_case "energy preserved" `Slow test_emit_energy_preserved;
          Alcotest.test_case "gamma beta" `Quick test_emit_respects_gamma_beta;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "trajectory" `Quick test_sweep_trajectory;
          Alcotest.test_case "modes agree" `Quick test_sweep_modes_agree_on_floor;
        ] );
    ]
