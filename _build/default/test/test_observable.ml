(* Unit tests for Pauli-string observables and expectation estimation. *)

let check = Alcotest.check
let int = Alcotest.int
let float2 = Alcotest.float 0.05
let floatx = Alcotest.float 1e-9

module B = Quantum.Circuit.Builder
module O = Sim.Observable

let prepare f n =
  let b = B.create ~num_qubits:n ~num_clbits:n in
  f b;
  B.build b

let test_ising_terms () =
  let h = O.ising_chain ~n:4 ~j:1. ~g:0.5 in
  check int "3 ZZ + 4 X" 7 (List.length h)

let test_grouping_z_terms_share () =
  let h = [ O.zz 0 1; O.zz 1 2; O.z_ 3 ] in
  check int "single Z basis" 1 (List.length (O.measurement_bases h))

let test_grouping_x_separate () =
  let h = [ O.zz 0 1; O.x_ 0 ] in
  (* Z on qubit 0 vs X on qubit 0: incompatible. *)
  check int "two bases" 2 (List.length (O.measurement_bases h))

let test_grouping_disjoint_mixed () =
  let h = [ O.zz 0 1; O.x_ 2 ] in
  check int "shareable" 1 (List.length (O.measurement_bases h))

let test_ground_state_z () =
  (* |00>: <Z0 Z1> = 1, <Z0> = 1. *)
  let p = prepare (fun _ -> ()) 2 in
  check floatx "zz" 1. (O.expectation_exact ~prepare:p [ O.zz 0 1 ]);
  check floatx "z" 1. (O.expectation_exact ~prepare:p [ O.z_ 0 ])

let test_excited_state_z () =
  let p = prepare (fun b -> B.x b 0) 2 in
  check floatx "zz flips" (-1.) (O.expectation_exact ~prepare:p [ O.zz 0 1 ])

let test_plus_state_x () =
  let p = prepare (fun b -> B.h b 0) 1 in
  check floatx "<+|X|+> = 1" 1. (O.expectation_exact ~prepare:p [ O.x_ 0 ]);
  check floatx "<+|Z|+> = 0" 0. (O.expectation_exact ~prepare:p [ O.z_ 0 ])

let test_y_basis () =
  (* |i> = S H |0> has <Y> = 1. *)
  let p =
    prepare
      (fun b ->
        B.h b 0;
        B.add b (Quantum.Gate.One_q (Quantum.Gate.S, 0)))
      1
  in
  check floatx "<Y>" 1.
    (O.expectation_exact ~prepare:p [ { O.coeff = 1.; paulis = [ (0, O.Y) ] } ])

let test_bell_correlations () =
  let p =
    prepare
      (fun b ->
        B.h b 0;
        B.cx b 0 1)
      2
  in
  check floatx "<ZZ> = 1" 1. (O.expectation_exact ~prepare:p [ O.zz 0 1 ]);
  check floatx "<XX> = 1" 1.
    (O.expectation_exact ~prepare:p
       [ { O.coeff = 1.; paulis = [ (0, O.X); (1, O.X) ] } ]);
  check floatx "<Z0> = 0" 0. (O.expectation_exact ~prepare:p [ O.z_ 0 ])

let test_coefficients_linear () =
  let p = prepare (fun _ -> ()) 2 in
  check floatx "weighted sum" (-2.5)
    (O.expectation_exact ~prepare:p [ O.zz ~coeff:(-3.) 0 1; O.z_ ~coeff:0.5 0 ])

let test_sampled_matches_exact () =
  let p =
    prepare
      (fun b ->
        B.h b 0;
        B.cx b 0 1;
        B.rx b 0.7 1)
      2
  in
  let h = O.ising_chain ~n:2 ~j:1. ~g:0.6 in
  let exact = O.expectation_exact ~prepare:p h in
  let sampled = O.expectation ~seed:5 ~shots:20000 ~prepare:p h in
  check float2 "sampling converges" exact sampled

let test_exact_rejects_dynamic () =
  let b = B.create ~num_qubits:1 ~num_clbits:1 in
  B.measure b 0 0;
  Alcotest.check_raises "dynamic rejected"
    (Invalid_argument "Observable.expectation_exact: dynamic preparation")
    (fun () -> ignore (O.expectation_exact ~prepare:(B.build b) [ O.z_ 0 ]))

let test_ising_ground_bound () =
  (* Variational states can't beat the exact ground energy; a crude scan
     should stay above it while the product state hits exactly -J(n-1). *)
  let n = 3 in
  let h = O.ising_chain ~n ~j:1. ~g:0. in
  let product = prepare (fun _ -> ()) n in
  check floatx "product state saturates g=0 bound" (-2.)
    (O.expectation_exact ~prepare:product h)

let () =
  Alcotest.run "observable"
    [
      ( "structure",
        [
          Alcotest.test_case "ising terms" `Quick test_ising_terms;
          Alcotest.test_case "z grouping" `Quick test_grouping_z_terms_share;
          Alcotest.test_case "x separate" `Quick test_grouping_x_separate;
          Alcotest.test_case "disjoint mixed" `Quick test_grouping_disjoint_mixed;
        ] );
      ( "expectation",
        [
          Alcotest.test_case "ground z" `Quick test_ground_state_z;
          Alcotest.test_case "excited z" `Quick test_excited_state_z;
          Alcotest.test_case "plus x" `Quick test_plus_state_x;
          Alcotest.test_case "y basis" `Quick test_y_basis;
          Alcotest.test_case "bell" `Quick test_bell_correlations;
          Alcotest.test_case "linear" `Quick test_coefficients_linear;
          Alcotest.test_case "sampled = exact" `Slow test_sampled_matches_exact;
          Alcotest.test_case "dynamic rejected" `Quick test_exact_rejects_dynamic;
          Alcotest.test_case "ising bound" `Quick test_ising_ground_bound;
        ] );
    ]
