(* Unit tests for coupling maps, calibration, and the device model. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let test_falcon_shape () =
  let g = Hardware.Topology.falcon_27 in
  check int "27 qubits" 27 (Galg.Graph.order g);
  check int "28 links" 28 (Galg.Graph.size g);
  check bool "connected" true (Galg.Graph.is_connected g);
  (* Heavy-hex: degree at most 3. *)
  check bool "degree <= 3" true (Galg.Graph.max_degree g <= 3)

let test_heavy_hex_scaling () =
  let g = Hardware.Topology.heavy_hex ~rows:2 ~cols:2 in
  check bool "connected" true (Galg.Graph.is_connected g);
  check bool "degree <= 3" true (Galg.Graph.max_degree g <= 3);
  let g2 = Hardware.Topology.heavy_hex ~rows:3 ~cols:3 in
  check bool "bigger lattice" true (Galg.Graph.order g2 > Galg.Graph.order g)

let test_heavy_hex_at_least () =
  check int "small -> falcon" 27
    (Galg.Graph.order (Hardware.Topology.heavy_hex_at_least 10));
  let g = Hardware.Topology.heavy_hex_at_least 64 in
  check bool ">= 64" true (Galg.Graph.order g >= 64);
  check bool "connected" true (Galg.Graph.is_connected g)

let test_simple_topologies () =
  check int "line edges" 4 (Galg.Graph.size (Hardware.Topology.line 5));
  check int "ring edges" 5 (Galg.Graph.size (Hardware.Topology.ring 5));
  check int "grid 2x3 edges" 7 (Galg.Graph.size (Hardware.Topology.grid ~rows:2 ~cols:3));
  check int "star center degree" 4
    (Galg.Graph.degree (Hardware.Topology.star 5) 0);
  check int "full K4" 6 (Galg.Graph.size (Hardware.Topology.fully_connected 4));
  check int "t-shape" 4 (Galg.Graph.size Hardware.Topology.t_shape_5)

let test_t_shape_matches_paper_fig4 () =
  (* Fig. 4 (a): q1 has degree 3, others lower. *)
  let g = Hardware.Topology.t_shape_5 in
  check int "hub degree" 3 (Galg.Graph.degree g 1);
  check int "max degree 3" 3 (Galg.Graph.max_degree g)

let test_calibration_ranges () =
  let g = Hardware.Topology.falcon_27 in
  let cal = Hardware.Calibration.synthetic ~seed:1 g in
  List.iter
    (fun (u, v) ->
      let l = Hardware.Calibration.link cal u v in
      check bool "cx error range" true
        (l.Hardware.Calibration.cx_error >= 0.006
        && l.Hardware.Calibration.cx_error <= 0.025);
      check bool "cx duration range" true
        (l.Hardware.Calibration.cx_duration_dt >= 1200
        && l.Hardware.Calibration.cx_duration_dt <= 2400))
    (Galg.Graph.edges g);
  for q = 0 to 26 do
    let c = Hardware.Calibration.qubit cal q in
    check bool "readout range" true
      (c.Hardware.Calibration.readout_error >= 0.01
      && c.Hardware.Calibration.readout_error <= 0.05);
    check bool "t1 positive" true (c.Hardware.Calibration.t1_dt > 0.)
  done

let test_calibration_deterministic () =
  let g = Hardware.Topology.falcon_27 in
  let a = Hardware.Calibration.synthetic ~seed:7 g in
  let b = Hardware.Calibration.synthetic ~seed:7 g in
  check (Alcotest.float 0.) "same link error"
    (Hardware.Calibration.link a 0 1).Hardware.Calibration.cx_error
    (Hardware.Calibration.link b 0 1).Hardware.Calibration.cx_error

let test_calibration_link_missing () =
  let g = Hardware.Topology.falcon_27 in
  let cal = Hardware.Calibration.synthetic ~seed:1 g in
  Alcotest.check_raises "not a link"
    (Invalid_argument "Calibration.link: not a coupling edge") (fun () ->
      ignore (Hardware.Calibration.link cal 0 26))

let test_ideal_calibration () =
  let g = Hardware.Topology.line 4 in
  let cal = Hardware.Calibration.ideal g in
  check (Alcotest.float 0.) "zero error" 0. (Hardware.Calibration.mean_cx_error cal);
  check (Alcotest.float 0.) "zero readout" 0.
    (Hardware.Calibration.qubit cal 0).Hardware.Calibration.readout_error

let test_device_queries () =
  let d = Hardware.Device.mumbai in
  check int "27 qubits" 27 (Hardware.Device.num_qubits d);
  check bool "0-1 adjacent" true (Hardware.Device.adjacent d 0 1);
  check int "self distance" 0 (Hardware.Device.distance d 5 5);
  check int "adjacent distance" 1 (Hardware.Device.distance d 0 1);
  check bool "far apart" true (Hardware.Device.distance d 0 26 > 3);
  check bool "cx error sane" true
    (Hardware.Device.cx_error d 0 1 > 0. && Hardware.Device.cx_error d 0 1 < 0.03);
  check bool "non adjacent error sentinel" true (Hardware.Device.cx_error d 0 26 >= 1.)

let test_device_quality_prefers_connectivity () =
  let line = Hardware.Device.ideal (Hardware.Topology.line 5) in
  (* Middle of a line beats the endpoint. *)
  check bool "middle better" true
    (Hardware.Device.qubit_quality line 2 > Hardware.Device.qubit_quality line 0)

let test_heavy_hex_for () =
  let d = Hardware.Device.heavy_hex_for 64 in
  check bool ">= 64" true (Hardware.Device.num_qubits d >= 64);
  let m = Hardware.Device.heavy_hex_for 20 in
  check int "mumbai for small" 27 (Hardware.Device.num_qubits m)

let () =
  Alcotest.run "hardware"
    [
      ( "topology",
        [
          Alcotest.test_case "falcon 27" `Quick test_falcon_shape;
          Alcotest.test_case "heavy hex scaling" `Quick test_heavy_hex_scaling;
          Alcotest.test_case "heavy hex at least" `Quick test_heavy_hex_at_least;
          Alcotest.test_case "simple topologies" `Quick test_simple_topologies;
          Alcotest.test_case "fig4 t-shape" `Quick test_t_shape_matches_paper_fig4;
        ] );
      ( "calibration",
        [
          Alcotest.test_case "ranges" `Quick test_calibration_ranges;
          Alcotest.test_case "deterministic" `Quick test_calibration_deterministic;
          Alcotest.test_case "missing link" `Quick test_calibration_link_missing;
          Alcotest.test_case "ideal" `Quick test_ideal_calibration;
        ] );
      ( "device",
        [
          Alcotest.test_case "queries" `Quick test_device_queries;
          Alcotest.test_case "quality" `Quick test_device_quality_prefers_connectivity;
          Alcotest.test_case "heavy hex for" `Quick test_heavy_hex_for;
        ] );
    ]
