(* Unit tests for the graph-algorithms substrate. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ---- Graph ---- *)

let test_create_empty () =
  let g = Galg.Graph.create 5 in
  check int "order" 5 (Galg.Graph.order g);
  check int "size" 0 (Galg.Graph.size g);
  check int "max degree" 0 (Galg.Graph.max_degree g)

let test_add_edge () =
  let g = Galg.Graph.create 4 in
  Galg.Graph.add_edge g 0 1;
  Galg.Graph.add_edge g 1 2;
  check bool "has 0-1" true (Galg.Graph.has_edge g 0 1);
  check bool "symmetric" true (Galg.Graph.has_edge g 1 0);
  check bool "no 0-2" false (Galg.Graph.has_edge g 0 2);
  check int "size" 2 (Galg.Graph.size g)

let test_add_edge_idempotent () =
  let g = Galg.Graph.create 3 in
  Galg.Graph.add_edge g 0 1;
  Galg.Graph.add_edge g 0 1;
  Galg.Graph.add_edge g 1 0;
  check int "size stays 1" 1 (Galg.Graph.size g)

let test_self_loop_ignored () =
  let g = Galg.Graph.create 3 in
  Galg.Graph.add_edge g 1 1;
  check int "no self loop" 0 (Galg.Graph.size g)

let test_out_of_range () =
  let g = Galg.Graph.create 3 in
  Alcotest.check_raises "invalid vertex" (Invalid_argument "Graph: vertex out of range")
    (fun () -> Galg.Graph.add_edge g 0 3)

let test_remove_edge () =
  let g = Galg.Graph.of_edges 3 [ (0, 1); (1, 2) ] in
  Galg.Graph.remove_edge g 0 1;
  check bool "removed" false (Galg.Graph.has_edge g 0 1);
  check int "size" 1 (Galg.Graph.size g);
  Galg.Graph.remove_edge g 0 1;
  check int "remove again is noop" 1 (Galg.Graph.size g)

let test_neighbors_sorted () =
  let g = Galg.Graph.of_edges 5 [ (2, 4); (2, 0); (2, 3) ] in
  check (Alcotest.list int) "sorted" [ 0; 3; 4 ] (Galg.Graph.neighbors g 2);
  check int "degree" 3 (Galg.Graph.degree g 2)

let test_edges_canonical () =
  let g = Galg.Graph.of_edges 4 [ (3, 1); (0, 2); (2, 1) ] in
  check
    (Alcotest.list (Alcotest.pair int int))
    "canonical order"
    [ (0, 2); (1, 2); (1, 3) ]
    (Galg.Graph.edges g)

let test_copy_independent () =
  let g = Galg.Graph.of_edges 3 [ (0, 1) ] in
  let g' = Galg.Graph.copy g in
  Galg.Graph.add_edge g' 1 2;
  check int "original untouched" 1 (Galg.Graph.size g);
  check int "copy grew" 2 (Galg.Graph.size g')

let test_bfs_line () =
  let g = Galg.Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
  let d = Galg.Graph.bfs_dist g 0 in
  check (Alcotest.array int) "line distances" [| 0; 1; 2; 3 |] d

let test_bfs_unreachable () =
  let g = Galg.Graph.of_edges 3 [ (0, 1) ] in
  let d = Galg.Graph.bfs_dist g 0 in
  check int "unreachable" max_int d.(2)

let test_all_pairs () =
  let g = Galg.Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  let d = Galg.Graph.all_pairs_dist g in
  check int "ring opposite" 2 d.(0).(2);
  check int "self" 0 d.(1).(1);
  check int "adjacent" 1 d.(3).(0)

let test_connectivity () =
  check bool "connected ring" true
    (Galg.Graph.is_connected (Galg.Graph.of_edges 3 [ (0, 1); (1, 2) ]));
  check bool "disconnected" false
    (Galg.Graph.is_connected (Galg.Graph.of_edges 3 [ (0, 1) ]));
  check bool "empty graph connected" true
    (Galg.Graph.is_connected (Galg.Graph.create 0))

let test_density () =
  let g = Galg.Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
  check (Alcotest.float 1e-9) "density" 0.5 (Galg.Graph.density g)

let test_contract () =
  (* Star around 1; contracting 2 into 0 rewires 2's edge. *)
  let g = Galg.Graph.of_edges 4 [ (1, 0); (1, 2); (1, 3) ] in
  Galg.Graph.contract g 0 2;
  check int "2 isolated" 0 (Galg.Graph.degree g 2);
  check bool "0 keeps link to 1" true (Galg.Graph.has_edge g 0 1);
  check int "no duplicate edge" 3 (Galg.Graph.degree g 1 + Galg.Graph.degree g 0)

let test_contract_reduces_bv_star_degree () =
  (* Paper Fig. 5: merging two leaves of the BV star lowers nothing, but
     merging a leaf into another leaf keeps max degree; the star center
     keeps its degree while leaves share wires. *)
  let g = Galg.Graph.of_edges 5 [ (4, 0); (4, 1); (4, 2); (4, 3) ] in
  Galg.Graph.contract g 0 1;
  check int "center degree drops" 3 (Galg.Graph.degree g 4)

(* ---- Coloring ---- *)

let test_color_triangle () =
  let g = Galg.Graph.of_edges 3 [ (0, 1); (1, 2); (0, 2) ] in
  let r = Galg.Coloring.best g in
  check int "triangle needs 3" 3 r.Galg.Coloring.count;
  check bool "proper" true (Galg.Coloring.is_proper g r)

let test_color_bipartite () =
  let g = Galg.Graph.of_edges 6 [ (0, 3); (0, 4); (1, 3); (1, 5); (2, 4); (2, 5) ] in
  let r = Galg.Coloring.dsatur g in
  check int "bipartite 2" 2 r.Galg.Coloring.count;
  check bool "proper" true (Galg.Coloring.is_proper g r)

let test_color_edgeless () =
  let g = Galg.Graph.create 4 in
  let r = Galg.Coloring.best g in
  check int "one color" 1 r.Galg.Coloring.count

let test_color_star () =
  (* BV interaction graph: star is 2-colorable -> 2 qubits suffice. *)
  let g = Galg.Graph.of_edges 8 (List.init 7 (fun i -> (7, i))) in
  check int "star 2-colorable" 2 (Galg.Coloring.best g).Galg.Coloring.count

let test_color_classes () =
  let g = Galg.Graph.of_edges 4 [ (0, 1); (2, 3) ] in
  let r = Galg.Coloring.dsatur g in
  let classes = Galg.Coloring.color_classes r in
  let total = Array.fold_left (fun acc l -> acc + List.length l) 0 classes in
  check int "classes partition vertices" 4 total

let test_greedy_order_respected () =
  let g = Galg.Graph.of_edges 3 [ (0, 1) ] in
  let r = Galg.Coloring.greedy ~order:[ 1; 0; 2 ] g in
  check bool "proper" true (Galg.Coloring.is_proper g r);
  check int "2 colors" 2 r.Galg.Coloring.count

(* ---- Matching ---- *)

let test_blossom_path () =
  let g = Galg.Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
  let m = Galg.Matching.blossom g in
  check bool "valid" true (Galg.Matching.is_valid g m);
  check int "perfect on P4" 2 (Galg.Matching.cardinality m)

let test_blossom_odd_cycle () =
  (* C5 needs blossom handling; max matching = 2. *)
  let g = Galg.Graph.of_edges 5 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ] in
  let m = Galg.Matching.blossom g in
  check bool "valid" true (Galg.Matching.is_valid g m);
  check int "C5 matching" 2 (Galg.Matching.cardinality m)

let test_blossom_petersen_like () =
  (* Two triangles joined by a bridge: matching of size 3 exists. *)
  let g =
    Galg.Graph.of_edges 6 [ (0, 1); (1, 2); (0, 2); (3, 4); (4, 5); (3, 5); (2, 3) ]
  in
  let m = Galg.Matching.blossom g in
  check int "size 3" 3 (Galg.Matching.cardinality m)

let test_blossom_beats_or_equals_greedy () =
  (* On P4 a bad greedy (middle edge first) gets 1; blossom gets 2. *)
  let g = Galg.Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
  let greedy =
    Galg.Matching.greedy ~weight:(fun u v -> if (u, v) = (1, 2) then 2. else 1.) g
  in
  let blossom = Galg.Matching.blossom g in
  check int "greedy trapped" 1 (Galg.Matching.cardinality greedy);
  check int "blossom optimal" 2 (Galg.Matching.cardinality blossom)

let test_greedy_maximal () =
  let g = Galg.Graph.of_edges 5 [ (0, 1); (1, 2); (2, 3); (3, 4) ] in
  let m = Galg.Matching.greedy ~weight:(fun _ _ -> 1.) g in
  check bool "valid" true (Galg.Matching.is_valid g m);
  check bool "maximal" true (Galg.Matching.is_maximal g m)

let test_priority_matching_keeps_priority () =
  (* Edge (0,1) is priority; the rest are not. The priority edge must be
     matched even when a larger plain matching exists through vertex 1. *)
  let g = Galg.Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
  let m = Galg.Matching.priority_matching ~priority:(fun u v -> (u, v) = (0, 1) || (v, u) = (0, 1)) g in
  check int "0 matched to 1" 1 m.(0);
  check int "2 matched to 3" 3 m.(2)

let test_matching_empty_graph () =
  let g = Galg.Graph.create 3 in
  let m = Galg.Matching.blossom g in
  check int "no edges, no matches" 0 (Galg.Matching.cardinality m)

(* ---- Union-find ---- *)

let test_union_find () =
  let u = Galg.Union_find.create 5 in
  check int "initial classes" 5 (Galg.Union_find.count u);
  Galg.Union_find.union u 0 1;
  Galg.Union_find.union u 1 2;
  check bool "same" true (Galg.Union_find.same u 0 2);
  check bool "different" false (Galg.Union_find.same u 0 3);
  check int "classes" 3 (Galg.Union_find.count u);
  Galg.Union_find.union u 0 2;
  check int "redundant union" 3 (Galg.Union_find.count u)

(* ---- Generators ---- *)

let test_random_edge_budget () =
  let g = Galg.Gen.random ~seed:11 20 ~density:0.3 in
  check int "edge budget" (Galg.Gen.edge_budget 20 ~density:0.3) (Galg.Graph.size g)

let test_random_deterministic () =
  let g1 = Galg.Gen.random ~seed:5 16 ~density:0.3 in
  let g2 = Galg.Gen.random ~seed:5 16 ~density:0.3 in
  check bool "same edges" true (Galg.Graph.edges g1 = Galg.Graph.edges g2)

let test_power_law_edge_budget () =
  let g = Galg.Gen.power_law ~seed:3 32 ~density:0.3 in
  check int "edge budget" (Galg.Gen.edge_budget 32 ~density:0.3) (Galg.Graph.size g)

let test_power_law_heavy_tail () =
  (* Power-law graphs should have a larger max degree than uniform random
     graphs of the same size/density (hub structure, paper §4.2.2). *)
  let pl = Galg.Gen.power_law ~seed:9 64 ~density:0.3 in
  let rnd = Galg.Gen.random ~seed:9 64 ~density:0.3 in
  check bool "hubbier" true (Galg.Graph.max_degree pl > Galg.Graph.max_degree rnd)

let test_degree_histogram () =
  let g = Galg.Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
  let h = Galg.Gen.degree_histogram g in
  check int "two deg-1" 2 h.(1);
  check int "two deg-2" 2 h.(2)

let () =
  Alcotest.run "galg"
    [
      ( "graph",
        [
          Alcotest.test_case "create empty" `Quick test_create_empty;
          Alcotest.test_case "add edge" `Quick test_add_edge;
          Alcotest.test_case "idempotent add" `Quick test_add_edge_idempotent;
          Alcotest.test_case "self loop ignored" `Quick test_self_loop_ignored;
          Alcotest.test_case "out of range" `Quick test_out_of_range;
          Alcotest.test_case "remove edge" `Quick test_remove_edge;
          Alcotest.test_case "neighbors sorted" `Quick test_neighbors_sorted;
          Alcotest.test_case "edges canonical" `Quick test_edges_canonical;
          Alcotest.test_case "copy independent" `Quick test_copy_independent;
          Alcotest.test_case "bfs line" `Quick test_bfs_line;
          Alcotest.test_case "bfs unreachable" `Quick test_bfs_unreachable;
          Alcotest.test_case "all pairs" `Quick test_all_pairs;
          Alcotest.test_case "connectivity" `Quick test_connectivity;
          Alcotest.test_case "density" `Quick test_density;
          Alcotest.test_case "contract" `Quick test_contract;
          Alcotest.test_case "contract BV star" `Quick test_contract_reduces_bv_star_degree;
        ] );
      ( "coloring",
        [
          Alcotest.test_case "triangle" `Quick test_color_triangle;
          Alcotest.test_case "bipartite" `Quick test_color_bipartite;
          Alcotest.test_case "edgeless" `Quick test_color_edgeless;
          Alcotest.test_case "star" `Quick test_color_star;
          Alcotest.test_case "classes partition" `Quick test_color_classes;
          Alcotest.test_case "greedy order" `Quick test_greedy_order_respected;
        ] );
      ( "matching",
        [
          Alcotest.test_case "path" `Quick test_blossom_path;
          Alcotest.test_case "odd cycle" `Quick test_blossom_odd_cycle;
          Alcotest.test_case "triangles + bridge" `Quick test_blossom_petersen_like;
          Alcotest.test_case "blossom vs greedy" `Quick test_blossom_beats_or_equals_greedy;
          Alcotest.test_case "greedy maximal" `Quick test_greedy_maximal;
          Alcotest.test_case "priority kept" `Quick test_priority_matching_keeps_priority;
          Alcotest.test_case "empty graph" `Quick test_matching_empty_graph;
        ] );
      ( "union_find",
        [ Alcotest.test_case "union and find" `Quick test_union_find ] );
      ( "generators",
        [
          Alcotest.test_case "random edge budget" `Quick test_random_edge_budget;
          Alcotest.test_case "random deterministic" `Quick test_random_deterministic;
          Alcotest.test_case "power-law edge budget" `Quick test_power_law_edge_budget;
          Alcotest.test_case "power-law heavy tail" `Quick test_power_law_heavy_tail;
          Alcotest.test_case "degree histogram" `Quick test_degree_histogram;
        ] );
    ]
