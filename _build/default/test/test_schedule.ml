(* Unit tests for ASAP scheduling and the timeline view. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

module B = Quantum.Circuit.Builder
module G = Quantum.Gate

let model = Quantum.Duration.default

let test_makespan_equals_duration () =
  List.iter
    (fun c ->
      let s = Quantum.Schedule.asap c in
      check int "makespan = duration" (Quantum.Circuit.duration model c)
        s.Quantum.Schedule.makespan)
    [
      Benchmarks.Bv.circuit 6;
      Benchmarks.Revlib.multiply_13 ();
      Caqr.Qs_caqr.max_reuse (Benchmarks.Bv.circuit 5);
    ]

let test_start_times_respect_wires () =
  let c = Benchmarks.Bv.circuit 5 in
  let s = Quantum.Schedule.asap c in
  (* For every pair of gates sharing a wire, the later one starts at or
     after the earlier one finishes. *)
  let entries = s.Quantum.Schedule.entries in
  Array.iteri
    (fun i e1 ->
      Array.iteri
        (fun j e2 ->
          if i < j then begin
            let share =
              List.exists
                (fun q -> List.mem q (G.qubits e2.Quantum.Schedule.gate.G.kind))
                (G.qubits e1.Quantum.Schedule.gate.G.kind)
            in
            if share && not (G.is_barrier e1.Quantum.Schedule.gate.G.kind)
               && not (G.is_barrier e2.Quantum.Schedule.gate.G.kind)
            then
              check bool "ordering" true
                (e2.Quantum.Schedule.start_dt >= e1.Quantum.Schedule.finish_dt)
          end)
        entries)
    entries

let test_parallel_gates_overlap () =
  let b = B.create ~num_qubits:2 ~num_clbits:0 in
  B.h b 0;
  B.h b 1;
  let s = Quantum.Schedule.asap (B.build b) in
  check int "both start at 0" 0
    (s.Quantum.Schedule.entries.(0).Quantum.Schedule.start_dt
    + s.Quantum.Schedule.entries.(1).Quantum.Schedule.start_dt)

let test_busy_and_idle () =
  let b = B.create ~num_qubits:2 ~num_clbits:0 in
  B.h b 0;
  B.h b 0;
  B.h b 1;
  let s = Quantum.Schedule.asap (B.build b) in
  let busy = Quantum.Schedule.busy s ~num_qubits:2 in
  check int "q0 busy" (2 * model.Quantum.Duration.one_q) busy.(0);
  check int "q1 busy" model.Quantum.Duration.one_q busy.(1);
  let idle = Quantum.Schedule.idle_fraction s ~num_qubits:2 in
  check (Alcotest.float 1e-9) "q0 never idle" 0. idle.(0);
  check (Alcotest.float 1e-9) "q1 half idle" 0.5 idle.(1)

let test_empty_circuit () =
  let s = Quantum.Schedule.asap (Quantum.Circuit.empty ~num_qubits:3 ~num_clbits:0) in
  check int "zero makespan" 0 s.Quantum.Schedule.makespan;
  check Alcotest.string "empty timeline" ""
    (Quantum.Schedule.to_string ~num_qubits:3 s)

let test_timeline_rows () =
  let c = Benchmarks.Bv.circuit 4 in
  let s = Quantum.Schedule.asap c in
  let text = Quantum.Schedule.to_string ~width:40 ~num_qubits:4 s in
  let rows = String.split_on_char '\n' text |> List.filter (fun r -> r <> "") in
  (* 4 qubit rows + the axis row *)
  check int "rows" 5 (List.length rows);
  check bool "mentions makespan" true
    (let needle = "dt" in
     let n = String.length needle and m = String.length text in
     let rec go i = i + n <= m && (String.sub text i n = needle || go (i + 1)) in
     go 0)

let test_idle_reflects_reuse_serialization () =
  (* The 2-qubit reused BV serializes on one wire: the ancilla wire gets
     idle gaps while the data wire measures/resets. *)
  let reused = fst (Quantum.Circuit.compact_qubits (Caqr.Qs_caqr.max_reuse (Benchmarks.Bv.circuit 5))) in
  let s = Quantum.Schedule.asap reused in
  let idle = Quantum.Schedule.idle_fraction s ~num_qubits:2 in
  check bool "some wire idles" true (Array.exists (fun f -> f > 0.2) idle)

let () =
  Alcotest.run "schedule"
    [
      ( "asap",
        [
          Alcotest.test_case "makespan = duration" `Quick test_makespan_equals_duration;
          Alcotest.test_case "wire ordering" `Quick test_start_times_respect_wires;
          Alcotest.test_case "parallel overlap" `Quick test_parallel_gates_overlap;
          Alcotest.test_case "busy and idle" `Quick test_busy_and_idle;
          Alcotest.test_case "empty" `Quick test_empty_circuit;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "rows" `Quick test_timeline_rows;
          Alcotest.test_case "reuse idles" `Quick test_idle_reflects_reuse_serialization;
        ] );
    ]
