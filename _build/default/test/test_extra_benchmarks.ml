(* Tests for the extra benchmark circuits and their reuse behaviour at
   the edges of the spectrum. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let deterministic_output circuit =
  let d = Sim.Executor.run ~seed:1 ~shots:48 circuit in
  match Sim.Counts.top d with
  | Some k when Sim.Counts.get d k = 48 -> Some k
  | _ -> None

let test_ghz_distribution () =
  let c = Benchmarks.Extra.ghz 5 in
  let d = Sim.Executor.run ~seed:2 ~shots:600 c in
  (* Only all-zeros and all-ones. *)
  check int "two outcomes" 600 (Sim.Counts.get d 0 + Sim.Counts.get d 0b11111);
  check bool "balanced" true
    (Sim.Counts.get d 0 > 200 && Sim.Counts.get d 0b11111 > 200)

let test_ghz_chain_interaction () =
  let g = Quantum.Circuit.interaction_graph (Benchmarks.Extra.ghz 6) in
  check int "chain edges" 5 (Galg.Graph.size g);
  check int "max degree 2" 2 (Galg.Graph.max_degree g)

let test_qft_complete_interaction () =
  let n = 5 in
  let g = Quantum.Circuit.interaction_graph (Benchmarks.Extra.qft n) in
  check int "complete graph" (n * (n - 1) / 2) (Galg.Graph.size g)

let test_qft_has_no_reuse () =
  (* Condition 1 fails for every pair: the applicability detector must
     say no. *)
  let c = Benchmarks.Extra.qft 5 in
  check bool "no opportunity" true (Caqr.Qs_caqr.opportunity c = None);
  let yes, _ =
    Caqr.Pipeline.beneficial Hardware.Device.mumbai (Caqr.Pipeline.Regular c)
  in
  check bool "detector says no" false yes

let test_w_star_reuses_like_bv () =
  let c = Benchmarks.Extra.w_state_star 8 in
  check bool "reuses to <= 3" true (Caqr.Qs_caqr.min_qubits c <= 3)

let test_ripple_adder_correct () =
  (* a = 2^n - 1, b = 1: b reads 0, carry-out z reads 1, a restored. *)
  List.iter
    (fun n ->
      let c = Benchmarks.Extra.ripple_adder n in
      match deterministic_output c with
      | Some k ->
        let a_bits = (k lsr 1) land ((1 lsl n) - 1) in
        let b_bits = (k lsr (1 + n)) land ((1 lsl n) - 1) in
        let z = (k lsr ((2 * n) + 1)) land 1 in
        check int (Printf.sprintf "a restored (n=%d)" n) ((1 lsl n) - 1) a_bits;
        check int "sum bits zero" 0 b_bits;
        check int "carry out" 1 z
      | None -> Alcotest.fail "adder must be deterministic")
    [ 1; 2; 3 ]

let test_ripple_adder_width () =
  let c = Benchmarks.Extra.ripple_adder 4 in
  check int "2n+2 qubits" 10 c.Quantum.Circuit.num_qubits

let test_ghz_reuse_preserves_entanglement () =
  (* Reusing GHZ qubits must keep the two-peak distribution. *)
  let c = Benchmarks.Extra.ghz 5 in
  match Caqr.Qs_caqr.reduce_once c with
  | None -> () (* no valid pair is acceptable: entangled chain *)
  | Some (_, c') ->
    let d0 = Sim.Executor.run ~seed:3 ~shots:2500 c in
    let d1 = Sim.Executor.run ~seed:4 ~shots:2500 c' in
    check bool "distribution close" true (Sim.Counts.tvd d0 d1 < 0.06)

let test_adder_compiles_on_mumbai () =
  let c = Benchmarks.Extra.ripple_adder 3 in
  let r = Caqr.Sr_caqr.regular Hardware.Device.mumbai c in
  let d0 = Sim.Executor.run ~seed:5 ~shots:32 c in
  let d1 = Sim.Executor.run ~seed:6 ~shots:32 r.Caqr.Sr_caqr.physical in
  check (Alcotest.float 1e-9) "sr preserves adder" 0. (Sim.Counts.tvd d0 d1)

let () =
  Alcotest.run "extra_benchmarks"
    [
      ( "circuits",
        [
          Alcotest.test_case "ghz distribution" `Quick test_ghz_distribution;
          Alcotest.test_case "ghz interaction" `Quick test_ghz_chain_interaction;
          Alcotest.test_case "qft complete" `Quick test_qft_complete_interaction;
          Alcotest.test_case "ripple adder" `Quick test_ripple_adder_correct;
          Alcotest.test_case "adder width" `Quick test_ripple_adder_width;
        ] );
      ( "reuse-spectrum",
        [
          Alcotest.test_case "qft no reuse" `Quick test_qft_has_no_reuse;
          Alcotest.test_case "w-star reuses" `Quick test_w_star_reuses_like_bv;
          Alcotest.test_case "ghz reuse semantics" `Quick test_ghz_reuse_preserves_entanglement;
          Alcotest.test_case "adder on mumbai" `Slow test_adder_compiles_on_mumbai;
        ] );
    ]
