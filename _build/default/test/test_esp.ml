(* Unit tests for the estimated-success-probability fidelity metric and
   the fidelity-tuned pipeline strategy. *)

let check = Alcotest.check
let bool = Alcotest.bool

module B = Quantum.Circuit.Builder

let mumbai = Hardware.Device.mumbai
let ideal = Hardware.Device.ideal Hardware.Topology.falcon_27

let test_empty_circuit_is_one () =
  let c = Quantum.Circuit.empty ~num_qubits:27 ~num_clbits:0 in
  check (Alcotest.float 1e-12) "empty" 1. (Transpiler.Esp.of_circuit mumbai c)

let test_ideal_device_is_one () =
  let b = B.create ~num_qubits:27 ~num_clbits:2 in
  B.h b 0;
  B.cx b 0 1;
  B.measure b 0 0;
  let c = B.build b in
  check (Alcotest.float 1e-12) "ideal" 1. (Transpiler.Esp.of_circuit ideal c)

let test_esp_in_unit_interval () =
  let c = (Transpiler.Transpile.run mumbai (Benchmarks.Bv.circuit 8)).Transpiler.Transpile.physical in
  let e = Transpiler.Esp.of_circuit mumbai c in
  check bool "in (0,1)" true (e > 0. && e < 1.)

let test_more_gates_lower_esp () =
  let small = B.create ~num_qubits:27 ~num_clbits:0 in
  B.cx small 0 1;
  let big = B.create ~num_qubits:27 ~num_clbits:0 in
  for _ = 1 to 10 do
    B.cx big 0 1
  done;
  check bool "monotone in gates" true
    (Transpiler.Esp.of_circuit mumbai (B.build big)
    < Transpiler.Esp.of_circuit mumbai (B.build small))

let test_factors_multiply () =
  let c = (Transpiler.Transpile.run mumbai (Benchmarks.Bv.circuit 6)).Transpiler.Transpile.physical in
  check (Alcotest.float 1e-9) "product"
    (Transpiler.Esp.gate_factor mumbai c *. Transpiler.Esp.decoherence_factor mumbai c)
    (Transpiler.Esp.of_circuit mumbai c)

let test_sr_beats_baseline_on_bv () =
  (* The paper's fidelity claim, analytically: fewer qubits + no swaps +
     shorter exposure => higher ESP. *)
  let c = Benchmarks.Bv.circuit 10 in
  let base = (Transpiler.Transpile.run mumbai c).Transpiler.Transpile.physical in
  let sr = (Caqr.Sr_caqr.regular mumbai c).Caqr.Sr_caqr.physical in
  check bool "sr wins" true
    (Transpiler.Esp.of_circuit mumbai sr > Transpiler.Esp.of_circuit mumbai base)

let test_esp_predicts_noisy_success () =
  (* ESP ordering should match measured success-rate ordering. *)
  let c = Benchmarks.Bv.circuit 8 in
  let base = (Transpiler.Transpile.run mumbai c).Transpiler.Transpile.physical in
  let sr = (Caqr.Sr_caqr.regular mumbai c).Caqr.Sr_caqr.physical in
  let secret = Benchmarks.Bv.expected_output 8 in
  let succ p seed =
    Sim.Counts.success_rate (Sim.Noise.run ~device:mumbai ~seed ~shots:400 p) secret
  in
  let esp_order = Transpiler.Esp.of_circuit mumbai sr > Transpiler.Esp.of_circuit mumbai base in
  let succ_order = succ sr 2 > succ base 1 in
  check bool "orders agree" true (esp_order = succ_order)

let test_pipeline_best_fidelity_strategy () =
  let input = Caqr.Pipeline.Regular (Benchmarks.Bv.circuit 8) in
  let r = Caqr.Pipeline.compile mumbai Caqr.Pipeline.Qs_best_fidelity input in
  let base = Caqr.Pipeline.compile mumbai Caqr.Pipeline.Baseline input in
  check bool "fidelity version at least as good" true
    (Transpiler.Esp.of_circuit mumbai r.Caqr.Pipeline.physical
    >= Transpiler.Esp.of_circuit mumbai base.Caqr.Pipeline.physical);
  (* And it still computes the right answer. *)
  let d = Sim.Executor.run ~seed:5 ~shots:32 r.Caqr.Pipeline.physical in
  check Alcotest.int "secret" 32 (Sim.Counts.get d (Benchmarks.Bv.expected_output 8))

let () =
  Alcotest.run "esp"
    [
      ( "esp",
        [
          Alcotest.test_case "empty = 1" `Quick test_empty_circuit_is_one;
          Alcotest.test_case "ideal = 1" `Quick test_ideal_device_is_one;
          Alcotest.test_case "unit interval" `Quick test_esp_in_unit_interval;
          Alcotest.test_case "monotone in gates" `Quick test_more_gates_lower_esp;
          Alcotest.test_case "factors multiply" `Quick test_factors_multiply;
          Alcotest.test_case "sr beats baseline" `Quick test_sr_beats_baseline_on_bv;
          Alcotest.test_case "predicts noisy success" `Slow test_esp_predicts_noisy_success;
          Alcotest.test_case "pipeline strategy" `Quick test_pipeline_best_fidelity_strategy;
        ] );
    ]
