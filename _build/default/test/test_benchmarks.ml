(* Unit tests for the benchmark circuits: widths, structure, and — since
   all regular benchmarks are computational-basis-deterministic — their
   ideal outputs. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let deterministic_output circuit =
  let d = Sim.Executor.run ~seed:1 ~shots:64 circuit in
  match Sim.Counts.top d with
  | Some k when Sim.Counts.get d k = 64 -> Some k
  | _ -> None

(* ---- BV ---- *)

let test_bv_width () =
  let c = Benchmarks.Bv.circuit 5 in
  check int "qubits" 5 c.Quantum.Circuit.num_qubits;
  check int "clbits" 4 c.Quantum.Circuit.num_clbits

let test_bv_star_interaction () =
  let g = Quantum.Circuit.interaction_graph (Benchmarks.Bv.circuit 6) in
  check int "ancilla degree" 5 (Galg.Graph.degree g 5);
  check int "leaf degree" 1 (Galg.Graph.degree g 0)

let test_bv_outputs_secret () =
  List.iter
    (fun n ->
      match deterministic_output (Benchmarks.Bv.circuit n) with
      | Some k -> check int (Printf.sprintf "bv%d secret" n) (Benchmarks.Bv.expected_output n) k
      | None -> Alcotest.fail "BV must be deterministic")
    [ 3; 5; 8 ]

let test_bv_custom_secret () =
  let c = Benchmarks.Bv.circuit ~secret:0b0101 5 in
  (match deterministic_output c with
   | Some k -> check int "custom secret" 0b0101 k
   | None -> Alcotest.fail "deterministic");
  check int "fewer cx" 2 (Quantum.Circuit.two_q_count c)

let test_bv_too_small () =
  Alcotest.check_raises "n >= 2"
    (Invalid_argument "Bv.circuit: need at least 2 qubits") (fun () ->
      ignore (Benchmarks.Bv.circuit 1))

(* ---- RevLib-style ---- *)

let test_rd32_adder () =
  let c = Benchmarks.Revlib.rd32 () in
  check int "5 qubits" 5 c.Quantum.Circuit.num_qubits;
  match deterministic_output c with
  | Some k ->
    (* inputs 1,0,1: sum = 0 (bit 3), carry = 1 (bit 4); inputs echo. *)
    check int "adder result" 0b10101 k
  | None -> Alcotest.fail "rd32 deterministic"

let test_4mod5 () =
  let c = Benchmarks.Revlib.four_mod5 () in
  check int "5 qubits" 5 c.Quantum.Circuit.num_qubits;
  check bool "deterministic" true (deterministic_output c <> None)

let test_multiply13 () =
  let c = Benchmarks.Revlib.multiply_13 () in
  check int "13 qubits" 13 c.Quantum.Circuit.num_qubits;
  match deterministic_output c with
  | Some k ->
    (* a = 3 (q0,q1), b = 5 (q3,q5): carry-less 3*5 = 0b1111 on p0..p3
       (GF(2): (x+1)(x^2+1) = x^3+x^2+x+1). *)
    check int "a echo" 0b011 (k land 0b111);
    check int "b echo" 0b101 ((k lsr 3) land 0b111);
    check int "product" 0b1111 ((k lsr 6) land 0b111111
    )
  | None -> Alcotest.fail "multiply deterministic"

let test_system9 () =
  let c = Benchmarks.Revlib.system_9 () in
  check int "9 qubits" 9 c.Quantum.Circuit.num_qubits;
  check bool "deterministic" true (deterministic_output c <> None)

let test_cc_structure () =
  let c = Benchmarks.Revlib.cc 10 in
  check int "10 qubits" 10 c.Quantum.Circuit.num_qubits;
  let g = Quantum.Circuit.interaction_graph c in
  check int "star center" 5 (Galg.Graph.degree g 9);
  check bool "deterministic" true (deterministic_output c <> None)

let test_xor5 () =
  let c = Benchmarks.Revlib.xor5 () in
  match deterministic_output c with
  | Some k ->
    (* parity of 1,0,1,0 = 0 on q4; inputs echo. *)
    check int "parity result" 0b00101 k
  | None -> Alcotest.fail "xor5 deterministic"

let test_ccx_truth_table () =
  (* Exhaustive Toffoli check through the 6-CX decomposition. *)
  List.iter
    (fun (a, b) ->
      let bd = Quantum.Circuit.Builder.create ~num_qubits:3 ~num_clbits:3 in
      if a = 1 then Quantum.Circuit.Builder.x bd 0;
      if b = 1 then Quantum.Circuit.Builder.x bd 1;
      Benchmarks.Revlib.ccx bd 0 1 2;
      Quantum.Circuit.Builder.measure bd 0 0;
      Quantum.Circuit.Builder.measure bd 1 1;
      Quantum.Circuit.Builder.measure bd 2 2;
      let c = Quantum.Circuit.Builder.build bd in
      match deterministic_output c with
      | Some k ->
        let expected = a lor (b lsl 1) lor ((a land b) lsl 2) in
        check int (Printf.sprintf "ccx %d%d" a b) expected k
      | None -> Alcotest.fail "ccx deterministic")
    [ (0, 0); (0, 1); (1, 0); (1, 1) ]

(* ---- Suite ---- *)

let test_suite_names () =
  let names = List.map (fun e -> e.Benchmarks.Suite.name) (Benchmarks.Suite.table1 ()) in
  List.iter
    (fun n -> check bool n true (List.mem n names))
    [ "RD-32"; "4mod5"; "Multiply_13"; "System_9"; "BV_10"; "CC_10"; "XOR_5";
      "QAOA5-0.3"; "QAOA10-0.3"; "QAOA15-0.3"; "QAOA20-0.3"; "QAOA25-0.3" ]

let test_suite_kinds () =
  let is_commutable e =
    match e.Benchmarks.Suite.kind with
    | Benchmarks.Suite.Commutable _ -> true
    | Benchmarks.Suite.Regular -> false
  in
  check bool "bv regular" false (is_commutable (Benchmarks.Suite.find "BV_10"));
  check bool "qaoa commutable" true (is_commutable (Benchmarks.Suite.find "QAOA10-0.3"))

let test_suite_find_missing () =
  Alcotest.check_raises "missing" Not_found (fun () ->
      ignore (Benchmarks.Suite.find "nope"))

let test_qaoa_entry_graph_matches_circuit () =
  let e = Benchmarks.Suite.find "QAOA10-0.3" in
  match e.Benchmarks.Suite.kind with
  | Benchmarks.Suite.Commutable g ->
    check int "rzz count = edges" (Galg.Graph.size g)
      (Quantum.Circuit.two_q_count e.Benchmarks.Suite.circuit)
  | Benchmarks.Suite.Regular -> Alcotest.fail "should be commutable"

let () =
  Alcotest.run "benchmarks"
    [
      ( "bv",
        [
          Alcotest.test_case "width" `Quick test_bv_width;
          Alcotest.test_case "star interaction" `Quick test_bv_star_interaction;
          Alcotest.test_case "outputs secret" `Quick test_bv_outputs_secret;
          Alcotest.test_case "custom secret" `Quick test_bv_custom_secret;
          Alcotest.test_case "too small" `Quick test_bv_too_small;
        ] );
      ( "revlib",
        [
          Alcotest.test_case "rd32 adder" `Quick test_rd32_adder;
          Alcotest.test_case "4mod5" `Quick test_4mod5;
          Alcotest.test_case "multiply_13" `Quick test_multiply13;
          Alcotest.test_case "system_9" `Quick test_system9;
          Alcotest.test_case "cc structure" `Quick test_cc_structure;
          Alcotest.test_case "xor5" `Quick test_xor5;
          Alcotest.test_case "ccx truth table" `Quick test_ccx_truth_table;
        ] );
      ( "suite",
        [
          Alcotest.test_case "names" `Quick test_suite_names;
          Alcotest.test_case "kinds" `Quick test_suite_kinds;
          Alcotest.test_case "find missing" `Quick test_suite_find_missing;
          Alcotest.test_case "qaoa graph" `Quick test_qaoa_entry_graph_matches_circuit;
        ] );
    ]
