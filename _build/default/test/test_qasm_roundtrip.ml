(* QASM round-trip regression for reuse-transformed dynamic circuits:
   printing and re-parsing must preserve the circuit's shape — gate
   count, depth, and the mid-circuit measurements that reuse introduces
   — so artifacts survive the trip to an external toolchain. *)

let check = Alcotest.check
let int = Alcotest.int

let mumbai = Hardware.Device.mumbai

let roundtrip c = Quantum.Qasm_parser.of_string (Quantum.Qasm.to_string c)

let assert_preserved name (c : Quantum.Circuit.t) =
  let c' = roundtrip c in
  check int (name ^ ": qubits") c.Quantum.Circuit.num_qubits
    c'.Quantum.Circuit.num_qubits;
  check int (name ^ ": clbits") c.Quantum.Circuit.num_clbits
    c'.Quantum.Circuit.num_clbits;
  check int (name ^ ": gate count") (Quantum.Circuit.gate_count c)
    (Quantum.Circuit.gate_count c');
  check int (name ^ ": depth") (Quantum.Circuit.depth c)
    (Quantum.Circuit.depth c');
  check int
    (name ^ ": mid-circuit measurements")
    (Quantum.Circuit.mid_circuit_measurements c)
    (Quantum.Circuit.mid_circuit_measurements c')

let reused name =
  Caqr.Qs_caqr.max_reuse (Benchmarks.Suite.find name).Benchmarks.Suite.circuit

let test_reused_regulars () =
  List.iter
    (fun name ->
      let c = reused name in
      check Alcotest.bool (name ^ " is dynamic") true
        (Quantum.Circuit.mid_circuit_measurements c > 0);
      assert_preserved name c)
    [ "BV_10"; "CC_10"; "System_9"; "XOR_5" ]

let test_reused_qaoa () =
  let g = Galg.Gen.random ~seed:9 9 ~density:0.3 in
  let c = Caqr.Commute.emit (Caqr.Commute.make g) in
  assert_preserved "qaoa9 commuted" c

let test_sr_physical () =
  let c = (Benchmarks.Suite.find "BV_10").Benchmarks.Suite.circuit in
  let physical = (Caqr.Sr_caqr.regular mumbai c).Caqr.Sr_caqr.physical in
  let compacted, _ = Quantum.Circuit.compact_qubits physical in
  assert_preserved "sr bv10 physical" compacted

(* The trip must also preserve semantics, not just shape: the parsed
   circuit still computes the BV secret exactly. *)
let test_semantics_survive () =
  let original = (Benchmarks.Suite.find "BV_10").Benchmarks.Suite.circuit in
  let c = roundtrip (reused "BV_10") in
  check Alcotest.bool "parsed circuit still equivalent" true
    (Verify.Verdict.is_equivalent
       (Verify.Equiv.check ~original ~transformed:c ()))

let () =
  Alcotest.run "qasm-roundtrip"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "reuse-transformed regulars" `Quick
            test_reused_regulars;
          Alcotest.test_case "commuted qaoa" `Quick test_reused_qaoa;
          Alcotest.test_case "sr physical" `Quick test_sr_physical;
          Alcotest.test_case "semantics survive" `Quick test_semantics_survive;
        ] );
    ]
