(* Unit tests for max-cut, the QAOA ansatz, optimizers, and the driver. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let floatc = Alcotest.float 1e-9

let triangle () =
  { Qaoa.Maxcut.graph = Galg.Graph.of_edges 3 [ (0, 1); (1, 2); (0, 2) ]; name = "tri" }

let square () =
  {
    Qaoa.Maxcut.graph = Galg.Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3); (3, 0) ];
    name = "sq";
  }

(* ---- Maxcut ---- *)

let test_cut_value () =
  let p = triangle () in
  check floatc "empty cut" 0. (Qaoa.Maxcut.cut_value p 0b000);
  check floatc "single vertex" 2. (Qaoa.Maxcut.cut_value p 0b001);
  check floatc "triangle best = 2" 2. (Qaoa.Maxcut.cut_value p 0b011)

let test_brute_force () =
  check floatc "triangle optimum" 2. (Qaoa.Maxcut.brute_force_optimum (triangle ()));
  check floatc "square optimum" 4. (Qaoa.Maxcut.brute_force_optimum (square ()))

let test_generators_named () =
  let p = Qaoa.Maxcut.random ~seed:1 16 ~density:0.3 in
  check bool "name" true (p.Qaoa.Maxcut.name = "rand-16-0.30");
  let q = Qaoa.Maxcut.power_law ~seed:1 16 ~density:0.3 in
  check bool "name" true (q.Qaoa.Maxcut.name = "plaw-16-0.30")

let test_neg_expected_cut () =
  let p = square () in
  let counts = Sim.Counts.create ~num_clbits:4 in
  Sim.Counts.add counts 0b0101;
  (* perfect cut: 4 *)
  check floatc "negated optimum" (-4.) (Qaoa.Maxcut.neg_expected_cut p counts)

(* ---- Ansatz ---- *)

let test_ansatz_structure () =
  let p = square () in
  let c = Qaoa.Ansatz.circuit p ~gammas:[| 0.5 |] ~betas:[| 0.2 |] in
  check int "qubits" 4 c.Quantum.Circuit.num_qubits;
  (* 4 H + 4 rzz + 4 rx + 4 measure *)
  check int "gate count" 16 (Quantum.Circuit.gate_count c);
  check int "rzz per edge" 4 (Quantum.Circuit.two_q_count c)

let test_ansatz_layers () =
  let p = square () in
  let c2 = Qaoa.Ansatz.circuit p ~gammas:[| 0.5; 0.4 |] ~betas:[| 0.2; 0.1 |] in
  check int "two layers of rzz" 8 (Quantum.Circuit.two_q_count c2)

let test_ansatz_layer_mismatch () =
  Alcotest.check_raises "mismatch" (Invalid_argument "Ansatz.circuit: layer mismatch")
    (fun () ->
      ignore (Qaoa.Ansatz.circuit (square ()) ~gammas:[| 0.5 |] ~betas:[||]))

let test_ansatz_interaction_matches_problem () =
  let p = square () in
  let c = Qaoa.Ansatz.reference p in
  let ig = Quantum.Circuit.interaction_graph c in
  check bool "same edges" true
    (Galg.Graph.edges ig = Galg.Graph.edges p.Qaoa.Maxcut.graph)

let test_ansatz_beats_random_guess () =
  (* At the ring's known-good p=1 parameters (gamma = pi/4, beta = pi/8)
     the expected cut beats the uniform-random expectation (half the
     edges = 2). *)
  let p = square () in
  let c =
    Qaoa.Ansatz.circuit p
      ~gammas:[| -3. *. Float.pi /. 4. |]
      ~betas:[| 3. *. Float.pi /. 8. |]
  in
  let counts = Sim.Executor.run ~seed:3 ~shots:4000 c in
  let e = -.Qaoa.Maxcut.neg_expected_cut p counts in
  check bool "better than random" true (e > 2.5)

(* ---- Optimizer ---- *)

let sphere x = Array.fold_left (fun acc xi -> acc +. (xi *. xi)) 0. x

let test_nelder_mead_sphere () =
  let t =
    Qaoa.Optimizer.nelder_mead ~max_evals:200 ~init:[| 2.; -1.5 |] ~step:0.5 sphere
  in
  check bool "near zero" true (t.Qaoa.Optimizer.best_value < 1e-3)

let test_cobyla_sphere () =
  let t =
    Qaoa.Optimizer.cobyla_lite ~max_evals:200 ~init:[| 2.; -1.5 |] ~rho_start:0.5
      ~rho_end:1e-6 sphere
  in
  check bool "near zero" true (t.Qaoa.Optimizer.best_value < 1e-2)

let test_history_monotone () =
  let t =
    Qaoa.Optimizer.cobyla_lite ~max_evals:60 ~init:[| 1.; 1. |] ~rho_start:0.4
      ~rho_end:1e-6 sphere
  in
  let rec nonincreasing = function
    | a :: (b :: _ as rest) -> a >= b && nonincreasing rest
    | _ -> true
  in
  check bool "best-so-far never worsens" true (nonincreasing t.Qaoa.Optimizer.history);
  check bool "history nonempty" true (t.Qaoa.Optimizer.history <> [])

let test_optimizer_respects_budget () =
  let calls = ref 0 in
  let f x =
    incr calls;
    sphere x
  in
  ignore (Qaoa.Optimizer.nelder_mead ~max_evals:25 ~init:[| 1.; 2.; 3. |] ~step:0.3 f);
  check bool "eval budget" true (!calls <= 30)

(* ---- Driver ---- *)

let test_driver_improves () =
  let p = square () in
  let evaluate c =
    Qaoa.Maxcut.neg_expected_cut p (Sim.Executor.run ~seed:11 ~shots:800 c)
  in
  let run = Qaoa.Driver.optimize ~max_rounds:25 ~evaluate p in
  (match run.Qaoa.Driver.rounds with
   | first :: _ ->
     check bool "improved" true
       (run.Qaoa.Driver.best_energy <= first.Qaoa.Driver.energy)
   | [] -> Alcotest.fail "no rounds");
  check bool "sane energy" true
    (run.Qaoa.Driver.best_energy >= -4. && run.Qaoa.Driver.best_energy < 0.)

let test_driver_nelder_mead_variant () =
  let p = triangle () in
  let evaluate c =
    Qaoa.Maxcut.neg_expected_cut p (Sim.Executor.run ~seed:12 ~shots:800 c)
  in
  let run =
    Qaoa.Driver.optimize ~method_:Qaoa.Driver.Nelder_mead ~max_rounds:20 ~evaluate p
  in
  check bool "rounds recorded" true (List.length run.Qaoa.Driver.rounds >= 5)

let () =
  Alcotest.run "qaoa"
    [
      ( "maxcut",
        [
          Alcotest.test_case "cut value" `Quick test_cut_value;
          Alcotest.test_case "brute force" `Quick test_brute_force;
          Alcotest.test_case "generator names" `Quick test_generators_named;
          Alcotest.test_case "neg expected cut" `Quick test_neg_expected_cut;
        ] );
      ( "ansatz",
        [
          Alcotest.test_case "structure" `Quick test_ansatz_structure;
          Alcotest.test_case "layers" `Quick test_ansatz_layers;
          Alcotest.test_case "layer mismatch" `Quick test_ansatz_layer_mismatch;
          Alcotest.test_case "interaction graph" `Quick test_ansatz_interaction_matches_problem;
          Alcotest.test_case "beats random" `Quick test_ansatz_beats_random_guess;
        ] );
      ( "optimizer",
        [
          Alcotest.test_case "nelder-mead sphere" `Quick test_nelder_mead_sphere;
          Alcotest.test_case "cobyla sphere" `Quick test_cobyla_sphere;
          Alcotest.test_case "history monotone" `Quick test_history_monotone;
          Alcotest.test_case "eval budget" `Quick test_optimizer_respects_budget;
        ] );
      ( "driver",
        [
          Alcotest.test_case "improves" `Quick test_driver_improves;
          Alcotest.test_case "nelder-mead variant" `Quick test_driver_nelder_mead_variant;
        ] );
    ]
