(* Unit tests for the peephole optimizer and the QASM parser. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

module B = Quantum.Circuit.Builder
module G = Quantum.Gate

let build f =
  let b = B.create ~num_qubits:4 ~num_clbits:4 in
  f b;
  B.build b

(* ---- Optimize ---- *)

let test_hh_cancels () =
  let c =
    build (fun b ->
        B.h b 0;
        B.h b 0)
  in
  check int "empty" 0 (Quantum.Circuit.gate_count (Quantum.Optimize.peephole c))

let test_xx_cascade () =
  (* X X X X -> nothing; X X X -> X *)
  let c4 = build (fun b -> List.iter (fun _ -> B.x b 1) [ 1; 2; 3; 4 ]) in
  check int "four cancel" 0 (Quantum.Circuit.gate_count (Quantum.Optimize.peephole c4));
  let c3 = build (fun b -> List.iter (fun _ -> B.x b 1) [ 1; 2; 3 ]) in
  check int "three leave one" 1 (Quantum.Circuit.gate_count (Quantum.Optimize.peephole c3))

let test_cx_pair_cancels () =
  let c =
    build (fun b ->
        B.cx b 0 1;
        B.cx b 0 1)
  in
  check int "cx cx = id" 0 (Quantum.Circuit.gate_count (Quantum.Optimize.peephole c))

let test_cx_reversed_does_not_cancel () =
  let c =
    build (fun b ->
        B.cx b 0 1;
        B.cx b 1 0)
  in
  check int "different orientation kept" 2
    (Quantum.Circuit.gate_count (Quantum.Optimize.peephole c))

let test_cz_symmetric_cancels () =
  let c =
    build (fun b ->
        B.cz b 0 1;
        B.cz b 1 0)
  in
  check int "cz symmetric" 0 (Quantum.Circuit.gate_count (Quantum.Optimize.peephole c))

let test_interleaved_wire_blocks_cancellation () =
  (* H q0; CX q0 q1; H q0 — the CX touches q0, so the H's must stay. *)
  let c =
    build (fun b ->
        B.h b 0;
        B.cx b 0 1;
        B.h b 0)
  in
  check int "blocked by cx" 3 (Quantum.Circuit.gate_count (Quantum.Optimize.peephole c))

let test_other_wire_does_not_block () =
  (* H q0; X q1; H q0 — the X lives on another wire; H H cancels. *)
  let c =
    build (fun b ->
        B.h b 0;
        B.x b 1;
        B.h b 0)
  in
  check int "only x left" 1 (Quantum.Circuit.gate_count (Quantum.Optimize.peephole c))

let test_rz_fusion () =
  let c =
    build (fun b ->
        B.rz b 0.3 2;
        B.rz b 0.4 2)
  in
  let o = Quantum.Optimize.peephole c in
  check int "fused" 1 (Quantum.Circuit.gate_count o);
  match o.Quantum.Circuit.gates.(0).G.kind with
  | G.One_q (G.Rz th, 2) -> check (Alcotest.float 1e-9) "angle sum" 0.7 th
  | _ -> Alcotest.fail "expected fused rz"

let test_rz_fusion_to_identity () =
  let c =
    build (fun b ->
        B.rz b 0.3 2;
        B.rz b (-0.3) 2)
  in
  check int "identity dropped" 0 (Quantum.Circuit.gate_count (Quantum.Optimize.peephole c))

let test_rzz_fusion () =
  let c =
    build (fun b ->
        B.rzz b 0.2 0 1;
        B.rzz b 0.3 1 0)
  in
  check int "rzz fused across orientation" 1
    (Quantum.Circuit.gate_count (Quantum.Optimize.peephole c))

let test_s_sdg_cancels () =
  let c =
    build (fun b ->
        B.add b (G.One_q (G.S, 0));
        B.add b (G.One_q (G.Sdg, 0)))
  in
  check int "s sdg" 0 (Quantum.Circuit.gate_count (Quantum.Optimize.peephole c))

let test_dynamic_ops_block () =
  (* X; measure; X — measurement is a barrier, nothing cancels. *)
  let c =
    build (fun b ->
        B.x b 0;
        B.measure b 0 0;
        B.x b 0)
  in
  check int "measure blocks" 3 (Quantum.Circuit.gate_count (Quantum.Optimize.peephole c))

let test_optimizer_preserves_distribution () =
  (* A messy circuit with redundancy: same outcome before and after. *)
  let c =
    build (fun b ->
        B.h b 0;
        B.h b 0;
        B.h b 0;
        B.cx b 0 1;
        B.rz b 0.9 1;
        B.rz b (-0.9) 1;
        B.cx b 0 1;
        B.cx b 0 1;
        B.x b 2;
        B.x b 2;
        B.measure b 0 0;
        B.measure b 1 1;
        B.measure b 2 2)
  in
  let o = Quantum.Optimize.peephole c in
  check bool "smaller" true (Quantum.Circuit.gate_count o < Quantum.Circuit.gate_count c);
  let d0 = Sim.Executor.run ~seed:1 ~shots:2000 c in
  let d1 = Sim.Executor.run ~seed:2 ~shots:2000 o in
  check bool "same distribution" true (Sim.Counts.tvd d0 d1 < 0.06)

let test_removed_count () =
  let c =
    build (fun b ->
        B.h b 0;
        B.h b 0;
        B.x b 1)
  in
  check int "removed" 2 (Quantum.Optimize.removed c)

(* ---- Qasm parser ---- *)

let roundtrip c =
  Quantum.Qasm_parser.of_string (Quantum.Qasm.to_string c)

let test_parse_header_and_decl () =
  let c = Quantum.Qasm_parser.of_string
      "OPENQASM 3.0;\ninclude \"stdgates.inc\";\nqubit[3] q;\nbit[2] c;\nh q[0];\n"
  in
  check int "qubits" 3 c.Quantum.Circuit.num_qubits;
  check int "clbits" 2 c.Quantum.Circuit.num_clbits;
  check int "one gate" 1 (Quantum.Circuit.gate_count c)

let test_parse_gates () =
  let c =
    Quantum.Qasm_parser.of_string
      "qubit[3] q; bit[3] c;\n\
       h q[0]; x q[1]; sdg q[2]; rx(1.5) q[0]; rz(pi/2) q[1]; p(-pi) q[2];\n\
       cx q[0], q[1]; cz q[1], q[2]; swap q[0], q[2]; rzz(0.7) q[0], q[1];"
  in
  check int "ten gates" 10 (Quantum.Circuit.gate_count c);
  (match c.Quantum.Circuit.gates.(4).G.kind with
   | G.One_q (G.Rz th, 1) -> check (Alcotest.float 1e-9) "pi/2" (Float.pi /. 2.) th
   | _ -> Alcotest.fail "rz expected");
  match c.Quantum.Circuit.gates.(5).G.kind with
  | G.One_q (G.Phase th, 2) -> check (Alcotest.float 1e-9) "-pi" (-.Float.pi) th
  | _ -> Alcotest.fail "phase expected"

let test_parse_dynamic () =
  let c =
    Quantum.Qasm_parser.of_string
      "qubit[2] q; bit[2] c;\nc[0] = measure q[0];\nif (c[0]) x q[0];\nreset q[1];"
  in
  check int "three ops" 3 (Quantum.Circuit.gate_count c);
  (match c.Quantum.Circuit.gates.(0).G.kind with
   | G.Measure (0, 0) -> ()
   | _ -> Alcotest.fail "measure expected");
  match c.Quantum.Circuit.gates.(1).G.kind with
  | G.If_x (0, 0) -> ()
  | _ -> Alcotest.fail "if_x expected"

let test_parse_qasm2_measure () =
  let c =
    Quantum.Qasm_parser.of_string "qreg q[2]; creg c[2];\nmeasure q[1] -> c[0];"
  in
  match c.Quantum.Circuit.gates.(0).G.kind with
  | G.Measure (1, 0) -> ()
  | _ -> Alcotest.fail "qasm2 measure expected"

let test_parse_barrier_and_comments () =
  let c =
    Quantum.Qasm_parser.of_string
      "qubit[3] q; // declaration\nbarrier q[0], q[2]; // sync\n"
  in
  match c.Quantum.Circuit.gates.(0).G.kind with
  | G.Barrier [ 0; 2 ] -> ()
  | _ -> Alcotest.fail "barrier expected"

let test_parse_errors () =
  let fails s =
    match Quantum.Qasm_parser.of_string s with
    | exception Failure _ -> true
    | _ -> false
  in
  check bool "unknown gate" true (fails "qubit[1] q; frobnicate q[0];");
  check bool "bad angle" true (fails "qubit[1] q; rx(banana) q[0];");
  check bool "bad register" true (fails "qubit[1] q; h r[0];")

let test_roundtrip_bv () =
  let c = Benchmarks.Bv.circuit 5 in
  let c' = roundtrip c in
  check int "gates" (Quantum.Circuit.gate_count c) (Quantum.Circuit.gate_count c');
  let d0 = Sim.Executor.run ~seed:1 ~shots:64 c in
  let d1 = Sim.Executor.run ~seed:2 ~shots:64 c' in
  check (Alcotest.float 1e-9) "distribution" 0. (Sim.Counts.tvd d0 d1)

let test_roundtrip_dynamic_reuse () =
  (* The transformed 2-qubit BV (measure + conditional X mid-circuit). *)
  let c = fst (Quantum.Circuit.compact_qubits (Caqr.Qs_caqr.max_reuse (Benchmarks.Bv.circuit 5))) in
  let c' = roundtrip c in
  check int "gates" (Quantum.Circuit.gate_count c) (Quantum.Circuit.gate_count c');
  let d0 = Sim.Executor.run ~seed:3 ~shots:64 c in
  let d1 = Sim.Executor.run ~seed:4 ~shots:64 c' in
  check (Alcotest.float 1e-9) "distribution" 0. (Sim.Counts.tvd d0 d1)

let test_roundtrip_qaoa () =
  let g = Galg.Gen.random ~seed:3 6 ~density:0.4 in
  let c = Caqr.Commute.emit (Caqr.Commute.make g) in
  let c' = roundtrip c in
  check int "gates preserved" (Quantum.Circuit.gate_count c) (Quantum.Circuit.gate_count c')

let () =
  Alcotest.run "optimize"
    [
      ( "peephole",
        [
          Alcotest.test_case "hh cancels" `Quick test_hh_cancels;
          Alcotest.test_case "xx cascade" `Quick test_xx_cascade;
          Alcotest.test_case "cx pair" `Quick test_cx_pair_cancels;
          Alcotest.test_case "cx reversed kept" `Quick test_cx_reversed_does_not_cancel;
          Alcotest.test_case "cz symmetric" `Quick test_cz_symmetric_cancels;
          Alcotest.test_case "wire blocks" `Quick test_interleaved_wire_blocks_cancellation;
          Alcotest.test_case "other wire ok" `Quick test_other_wire_does_not_block;
          Alcotest.test_case "rz fusion" `Quick test_rz_fusion;
          Alcotest.test_case "rz identity" `Quick test_rz_fusion_to_identity;
          Alcotest.test_case "rzz fusion" `Quick test_rzz_fusion;
          Alcotest.test_case "s sdg" `Quick test_s_sdg_cancels;
          Alcotest.test_case "dynamic blocks" `Quick test_dynamic_ops_block;
          Alcotest.test_case "distribution preserved" `Quick test_optimizer_preserves_distribution;
          Alcotest.test_case "removed count" `Quick test_removed_count;
        ] );
      ( "qasm-parser",
        [
          Alcotest.test_case "header + decls" `Quick test_parse_header_and_decl;
          Alcotest.test_case "gates" `Quick test_parse_gates;
          Alcotest.test_case "dynamic ops" `Quick test_parse_dynamic;
          Alcotest.test_case "qasm2 measure" `Quick test_parse_qasm2_measure;
          Alcotest.test_case "barrier + comments" `Quick test_parse_barrier_and_comments;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "roundtrip bv" `Quick test_roundtrip_bv;
          Alcotest.test_case "roundtrip dynamic" `Quick test_roundtrip_dynamic_reuse;
          Alcotest.test_case "roundtrip qaoa" `Quick test_roundtrip_qaoa;
        ] );
    ]
