(* Unit tests for layout, routing, and the baseline transpile pipeline. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

module B = Quantum.Circuit.Builder
module G = Quantum.Gate

let line_device n = Hardware.Device.ideal (Hardware.Topology.line n)

let ghz n =
  let b = B.create ~num_qubits:n ~num_clbits:n in
  B.h b 0;
  for q = 1 to n - 1 do
    B.cx b 0 q
  done;
  for q = 0 to n - 1 do
    B.measure b q q
  done;
  B.build b

(* ---- Layout ---- *)

let test_trivial_layout () =
  let d = line_device 5 in
  let l = Transpiler.Layout.trivial d 3 in
  check int "l2p" 1 l.Transpiler.Layout.l2p.(1);
  check int "p2l" 2 l.Transpiler.Layout.p2l.(2);
  check int "free" (-1) l.Transpiler.Layout.p2l.(4)

let test_trivial_too_small () =
  Alcotest.check_raises "too small"
    (Invalid_argument "Layout.trivial: device too small") (fun () ->
      ignore (Transpiler.Layout.trivial (line_device 2) 3))

let test_initial_layout_total () =
  let d = Hardware.Device.mumbai in
  let c = ghz 5 in
  let l = Transpiler.Layout.initial d c in
  (* Every logical mapped, all distinct. *)
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun p ->
      check bool "mapped" true (p >= 0);
      check bool "distinct" false (Hashtbl.mem seen p);
      Hashtbl.add seen p ())
    l.Transpiler.Layout.l2p;
  (* p2l inverse consistent *)
  Array.iteri
    (fun p l' -> if l' >= 0 then check int "inverse" p l.Transpiler.Layout.l2p.(l'))
    l.Transpiler.Layout.p2l

let test_initial_layout_neighbors_close () =
  (* GHZ hub q0 should land on a well-connected qubit with its partners
     nearby. *)
  let d = Hardware.Device.mumbai in
  let c = ghz 4 in
  let l = Transpiler.Layout.initial d c in
  let hub = l.Transpiler.Layout.l2p.(0) in
  let close_count =
    List.length
      (List.filter
         (fun q -> Hardware.Device.distance d hub l.Transpiler.Layout.l2p.(q) <= 2)
         [ 1; 2; 3 ])
  in
  check bool "most partners within 2 hops" true (close_count >= 2)

let test_apply_swap () =
  let d = line_device 4 in
  let l = Transpiler.Layout.trivial d 2 in
  Transpiler.Layout.apply_swap l 1 2;
  check int "logical 1 moved" 2 l.Transpiler.Layout.l2p.(1);
  check int "physical 1 free" (-1) l.Transpiler.Layout.p2l.(1);
  check int "physical 2 occupied" 1 l.Transpiler.Layout.p2l.(2)

(* ---- Router ---- *)

let adjacent_only device (c : Quantum.Circuit.t) =
  Array.for_all
    (fun g ->
      if G.is_two_q g.G.kind then
        match G.qubits g.G.kind with
        | [ a; b ] -> Hardware.Device.adjacent device a b
        | _ -> true
      else true)
    c.Quantum.Circuit.gates

let test_route_already_compliant () =
  let d = line_device 3 in
  let b = B.create ~num_qubits:3 ~num_clbits:0 in
  B.cx b 0 1;
  B.cx b 1 2;
  let r = Transpiler.Router.route d (Transpiler.Layout.trivial d 3) (B.build b) in
  check int "no swaps" 0 r.Transpiler.Router.swaps_added;
  check bool "compliant" true (adjacent_only d r.Transpiler.Router.physical)

let test_route_inserts_swaps () =
  let d = line_device 3 in
  let b = B.create ~num_qubits:3 ~num_clbits:0 in
  B.cx b 0 2;
  let r = Transpiler.Router.route d (Transpiler.Layout.trivial d 3) (B.build b) in
  check bool "at least one swap" true (r.Transpiler.Router.swaps_added >= 1);
  check bool "compliant" true (adjacent_only d r.Transpiler.Router.physical)

let test_route_ghz_line () =
  let d = line_device 6 in
  let r = Transpiler.Router.route d (Transpiler.Layout.trivial d 6) (ghz 6) in
  check bool "compliant" true (adjacent_only d r.Transpiler.Router.physical);
  check bool "swaps bounded" true (r.Transpiler.Router.swaps_added <= 15)

let test_route_preserves_semantics () =
  (* Routed GHZ must produce the same distribution as the logical one. *)
  let d = line_device 5 in
  let c = ghz 5 in
  let r = Transpiler.Router.route d (Transpiler.Layout.trivial d 5) c in
  let d0 = Sim.Executor.run ~seed:1 ~shots:400 c in
  let d1 = Sim.Executor.run ~seed:2 ~shots:400 r.Transpiler.Router.physical in
  check bool "same distribution" true (Sim.Counts.tvd d0 d1 < 0.08)

let test_route_keeps_gate_multiset () =
  let d = line_device 5 in
  let c = ghz 5 in
  let r = Transpiler.Router.route d (Transpiler.Layout.trivial d 5) c in
  let phys = r.Transpiler.Router.physical in
  check int "cx preserved + swaps"
    (Quantum.Circuit.two_q_count c + r.Transpiler.Router.swaps_added)
    (Quantum.Circuit.two_q_count phys);
  check int "swap count matches" r.Transpiler.Router.swaps_added
    (Quantum.Circuit.swap_count phys)

(* ---- Transpile ---- *)

let test_transpile_stats () =
  let d = Hardware.Device.mumbai in
  let r = Transpiler.Transpile.run d (ghz 5) in
  let s = r.Transpiler.Transpile.stats in
  check bool "qubits at least logical" true (s.Transpiler.Transpile.qubits_used >= 5);
  check bool "depth positive" true (s.Transpiler.Transpile.depth > 0);
  check bool "duration positive" true (s.Transpiler.Transpile.duration_dt > 0);
  check bool "compliant" true (adjacent_only d r.Transpiler.Transpile.physical)

let test_physical_duration_uses_link_calibration () =
  let d = Hardware.Device.mumbai in
  let b = B.create ~num_qubits:27 ~num_clbits:0 in
  B.cx b 0 1;
  let c = B.build b in
  check int "per-link duration"
    (Hardware.Device.cx_duration d 0 1)
    (Transpiler.Transpile.physical_duration d c)

let test_bv10_baseline_needs_swaps () =
  (* The paper's Table 1: BV_10's star interaction graph cannot embed in
     heavy-hex (max degree 3) without SWAPs. *)
  let d = Hardware.Device.mumbai in
  let r = Transpiler.Transpile.run d (Benchmarks.Bv.circuit 10) in
  check bool "swaps > 0" true (r.Transpiler.Transpile.stats.Transpiler.Transpile.swaps > 0)

let () =
  Alcotest.run "transpiler"
    [
      ( "layout",
        [
          Alcotest.test_case "trivial" `Quick test_trivial_layout;
          Alcotest.test_case "trivial too small" `Quick test_trivial_too_small;
          Alcotest.test_case "initial total" `Quick test_initial_layout_total;
          Alcotest.test_case "partners close" `Quick test_initial_layout_neighbors_close;
          Alcotest.test_case "apply swap" `Quick test_apply_swap;
        ] );
      ( "router",
        [
          Alcotest.test_case "compliant passthrough" `Quick test_route_already_compliant;
          Alcotest.test_case "inserts swaps" `Quick test_route_inserts_swaps;
          Alcotest.test_case "ghz on line" `Quick test_route_ghz_line;
          Alcotest.test_case "semantics preserved" `Quick test_route_preserves_semantics;
          Alcotest.test_case "gate multiset" `Quick test_route_keeps_gate_multiset;
        ] );
      ( "transpile",
        [
          Alcotest.test_case "stats" `Quick test_transpile_stats;
          Alcotest.test_case "link durations" `Quick test_physical_duration_uses_link_calibration;
          Alcotest.test_case "bv10 needs swaps" `Quick test_bv10_baseline_needs_swaps;
        ] );
    ]
