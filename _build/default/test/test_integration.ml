(* Cross-module integration tests: the full paper pipeline — benchmark ->
   reuse transform -> hardware mapping -> (noisy) simulation -> metrics. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let mumbai = Hardware.Device.mumbai

let test_fig1_walkthrough () =
  (* Fig. 1: BV-5 goes 5 -> 4 -> 2 qubits with reuse; every version
     computes the same secret. *)
  let original = Benchmarks.Bv.circuit 5 in
  let one_reuse =
    match Caqr.Qs_caqr.reduce_once original with
    | Some (_, c) -> c
    | None -> Alcotest.fail "no reuse"
  in
  let minimal = Caqr.Qs_caqr.max_reuse original in
  check int "fig 1a" 5 (Caqr.Reuse.qubit_usage original);
  check int "fig 1b" 4 (Caqr.Reuse.qubit_usage one_reuse);
  check int "fig 1c" 2 (Caqr.Reuse.qubit_usage minimal);
  let secret = Benchmarks.Bv.expected_output 5 in
  List.iter
    (fun c ->
      let d = Sim.Executor.run ~seed:1 ~shots:32 c in
      check int "secret" 32 (Sim.Counts.get d secret))
    [ original; one_reuse; minimal ]

let test_fig2_duration_claim () =
  (* Measure + conditional X is about half the built-in measure+reset. *)
  let m = Quantum.Duration.default in
  let builtin = Quantum.Duration.measure_reset_builtin m in
  let ours = Quantum.Duration.measure_cond_x m in
  check bool "~50% saving" true
    (float_of_int ours /. float_of_int builtin < 0.55)

let test_fig4_swap_elimination () =
  (* Fig. 4/5: 5-qubit BV cannot fit the T-shaped 5-qubit device without
     SWAPs (star degree 4 > max degree 3), but the 4-qubit reused version
     fits with zero SWAPs. *)
  let device = Hardware.Device.ideal Hardware.Topology.t_shape_5 in
  let bv5 = Benchmarks.Bv.circuit 5 in
  let base = Transpiler.Transpile.run device bv5 in
  check bool "baseline needs swaps" true
    (base.Transpiler.Transpile.stats.Transpiler.Transpile.swaps > 0);
  let sr = Caqr.Sr_caqr.regular device bv5 in
  check int "sr eliminates swaps" 0 sr.Caqr.Sr_caqr.swaps_added

let test_table1_shape_bv10 () =
  (* Table 1 BV_10 row shape: baseline ~10 swaps, reuse versions far
     fewer; maximal reuse = 2 qubits. *)
  let input = Caqr.Pipeline.Regular (Benchmarks.Bv.circuit 10) in
  let base = Caqr.Pipeline.compile mumbai Caqr.Pipeline.Baseline input in
  let maxr = Caqr.Pipeline.compile mumbai Caqr.Pipeline.Qs_max_reuse input in
  let sbase = base.Caqr.Pipeline.stats and smax = maxr.Caqr.Pipeline.stats in
  check bool "baseline swaps heavy" true (sbase.Transpiler.Transpile.swaps >= 5);
  check int "max reuse 2 qubits" 2 smax.Transpiler.Transpile.qubits_used;
  check bool "max reuse fewer swaps" true
    (smax.Transpiler.Transpile.swaps < sbase.Transpiler.Transpile.swaps)

let test_table3_shape_tvd_improves () =
  (* Reuse (fewer qubits, fewer swaps) must not hurt TVD on the noisy
     device — the Table 3 direction. *)
  let c = Benchmarks.Bv.circuit 8 in
  let base = Transpiler.Transpile.run mumbai c in
  let sr = Caqr.Sr_caqr.regular mumbai c in
  let tvd p seed = Sim.Noise.tvd_vs_ideal ~device:mumbai ~seed ~shots:300 p in
  let t_base = tvd base.Transpiler.Transpile.physical 11 in
  let t_sr = tvd sr.Caqr.Sr_caqr.physical 12 in
  check bool
    (Printf.sprintf "sr %.3f <= base %.3f + margin" t_sr t_base)
    true
    (t_sr <= t_base +. 0.05)

let test_qaoa_reuse_end_to_end () =
  (* Commutable path: graph -> plan -> emitted circuit -> SR mapping ->
     noisy energy. Reused version must find comparable or better energy. *)
  let g = Galg.Gen.random ~seed:77 8 ~density:0.3 in
  let problem = { Qaoa.Maxcut.graph = g; name = "it" } in
  let plain = Caqr.Commute.emit (Caqr.Commute.make g) in
  let base = Transpiler.Transpile.run mumbai plain in
  let sr = Caqr.Sr_caqr.commutable mumbai g in
  let energy c seed =
    Qaoa.Maxcut.neg_expected_cut problem
      (Sim.Noise.run ~device:mumbai ~seed ~shots:1500 c)
  in
  let e_base = energy base.Transpiler.Transpile.physical 21 in
  let e_sr = energy sr.Caqr.Sr_caqr.physical 22 in
  check bool
    (Printf.sprintf "sr energy %.3f <= base %.3f + margin" e_sr e_base)
    true (e_sr <= e_base +. 0.4)

let test_qasm_roundtrip_artifacts () =
  (* Export of a transformed dynamic circuit mentions the conditional
     reset — the artifact a user would ship to hardware. *)
  let c = Caqr.Qs_caqr.max_reuse (Benchmarks.Bv.circuit 5) in
  let s = Quantum.Qasm.to_string c in
  let has needle =
    let n = String.length needle and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  check bool "conditional x" true (has "if (c[");
  check bool "measure" true (has "= measure")

let test_duration_accounting_consistency () =
  (* Transpile's duration equals the schedule of its own physical circuit. *)
  let r = Transpiler.Transpile.run mumbai (Benchmarks.Bv.circuit 8) in
  check int "duration consistent"
    (Transpiler.Transpile.physical_duration mumbai r.Transpiler.Transpile.physical)
    r.Transpiler.Transpile.stats.Transpiler.Transpile.duration_dt

let test_wide_qaoa_compiles_on_big_lattice () =
  (* QAOA-32 exceeds Mumbai: the scaled heavy-hex device absorbs it. *)
  let g = Galg.Gen.random ~seed:30 32 ~density:0.3 in
  let device = Hardware.Device.heavy_hex_for 32 in
  let plain = Caqr.Commute.emit (Caqr.Commute.make g) in
  let r = Transpiler.Transpile.run device plain in
  check bool "fits" true
    (r.Transpiler.Transpile.stats.Transpiler.Transpile.qubits_used >= 32)

let () =
  Alcotest.run "integration"
    [
      ( "paper-figures",
        [
          Alcotest.test_case "fig1 BV walkthrough" `Quick test_fig1_walkthrough;
          Alcotest.test_case "fig2 duration" `Quick test_fig2_duration_claim;
          Alcotest.test_case "fig4/5 swap elimination" `Quick test_fig4_swap_elimination;
          Alcotest.test_case "table1 BV row shape" `Quick test_table1_shape_bv10;
          Alcotest.test_case "table3 TVD direction" `Slow test_table3_shape_tvd_improves;
          Alcotest.test_case "qaoa end to end" `Slow test_qaoa_reuse_end_to_end;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "qasm artifacts" `Quick test_qasm_roundtrip_artifacts;
          Alcotest.test_case "duration accounting" `Quick test_duration_accounting_consistency;
          Alcotest.test_case "wide qaoa" `Quick test_wide_qaoa_compiles_on_big_lattice;
        ] );
    ]
