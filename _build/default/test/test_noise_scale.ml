(* Tests for the noise-scale knob and assorted calibration/device gaps. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let mumbai = Hardware.Device.mumbai

let test_scale_zero_is_ideal () =
  let d = Hardware.Device.with_noise_scale 0. mumbai in
  check (Alcotest.float 0.) "no cx error" 0. (Hardware.Device.cx_error d 0 1);
  check (Alcotest.float 0.) "no readout error" 0. (Hardware.Device.readout_error d 0);
  let cal = Hardware.Calibration.qubit d.Hardware.Device.calibration 0 in
  check bool "infinite t1" true (cal.Hardware.Calibration.t1_dt = infinity)

let test_scale_one_is_identity () =
  let d = Hardware.Device.with_noise_scale 1. mumbai in
  check (Alcotest.float 1e-12) "cx error unchanged"
    (Hardware.Device.cx_error mumbai 0 1)
    (Hardware.Device.cx_error d 0 1)

let test_scale_doubles () =
  let d = Hardware.Device.with_noise_scale 2. mumbai in
  check (Alcotest.float 1e-12) "cx error doubled"
    (2. *. Hardware.Device.cx_error mumbai 0 1)
    (Hardware.Device.cx_error d 0 1);
  let cal = Hardware.Calibration.qubit d.Hardware.Device.calibration 3 in
  let cal0 = Hardware.Calibration.qubit mumbai.Hardware.Device.calibration 3 in
  check (Alcotest.float 1e-6) "t1 halved"
    (cal0.Hardware.Calibration.t1_dt /. 2.)
    cal.Hardware.Calibration.t1_dt

let test_scale_clamps () =
  let d = Hardware.Device.with_noise_scale 1000. mumbai in
  check bool "clamped" true (Hardware.Device.cx_error d 0 1 <= 0.5)

let test_scale_negative_rejected () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Calibration.scale: negative factor") (fun () ->
      ignore (Hardware.Device.with_noise_scale (-1.) mumbai))

let test_scale_preserves_topology_and_duration () =
  let d = Hardware.Device.with_noise_scale 3. mumbai in
  check int "same qubits" (Hardware.Device.num_qubits mumbai) (Hardware.Device.num_qubits d);
  check bool "same adjacency" true (Hardware.Device.adjacent d 0 1);
  check int "same duration" (Hardware.Device.cx_duration mumbai 0 1)
    (Hardware.Device.cx_duration d 0 1)

let test_more_noise_more_tvd () =
  let c = (Transpiler.Transpile.run mumbai (Benchmarks.Bv.circuit 6)).Transpiler.Transpile.physical in
  let tvd factor =
    Sim.Noise.tvd_vs_ideal
      ~device:(Hardware.Device.with_noise_scale factor mumbai)
      ~seed:3 ~shots:400 c
  in
  let quiet = tvd 0.25 and loud = tvd 4. in
  check bool
    (Printf.sprintf "monotone-ish: %.3f < %.3f" quiet loud)
    true (quiet < loud)

let test_esp_tracks_noise_scale () =
  let c = (Transpiler.Transpile.run mumbai (Benchmarks.Bv.circuit 6)).Transpiler.Transpile.physical in
  let esp f = Transpiler.Esp.of_circuit (Hardware.Device.with_noise_scale f mumbai) c in
  check bool "esp falls with noise" true (esp 0.5 > esp 2.)

let () =
  Alcotest.run "noise_scale"
    [
      ( "scale",
        [
          Alcotest.test_case "zero = ideal" `Quick test_scale_zero_is_ideal;
          Alcotest.test_case "one = identity" `Quick test_scale_one_is_identity;
          Alcotest.test_case "doubles" `Quick test_scale_doubles;
          Alcotest.test_case "clamps" `Quick test_scale_clamps;
          Alcotest.test_case "negative rejected" `Quick test_scale_negative_rejected;
          Alcotest.test_case "topology preserved" `Quick test_scale_preserves_topology_and_duration;
        ] );
      ( "effects",
        [
          Alcotest.test_case "tvd monotone" `Slow test_more_noise_more_tvd;
          Alcotest.test_case "esp monotone" `Quick test_esp_tracks_noise_scale;
        ] );
    ]
