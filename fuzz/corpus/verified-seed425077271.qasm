OPENQASM 3.0;
include "stdgates.inc";
qubit[3] q;
bit[6] c;
barrier q[0], q[1], q[2];
