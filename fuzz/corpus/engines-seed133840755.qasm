OPENQASM 3.0;
include "stdgates.inc";
qubit[6] q;
bit[6] c;
swap q[3], q[1];
sdg q[2];
barrier q[0], q[1], q[4], q[5];
tdg q[4];
