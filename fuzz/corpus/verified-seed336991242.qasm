OPENQASM 3.0;
include "stdgates.inc";
qubit[4] q;
bit[5] c;
barrier q[0], q[1], q[2];
cz q[3], q[2];
swap q[3], q[1];
