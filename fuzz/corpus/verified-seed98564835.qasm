OPENQASM 3.0;
include "stdgates.inc";
qubit[4] q;
bit[6] c;
reset q[3];
barrier q[0], q[1], q[2], q[3];
y q[2];
